// Differential tests for the merge-based shuffle: every randomized job runs
// through both ShuffleMode::kMerge (sorted map-side runs + streaming
// loser-tree merge) and ShuffleMode::kReferenceSort (gather + global stable
// sort, the original implementation) and must produce byte-identical
// partition files and identical JobStats record/byte counters -- those
// counters are the paper's metric (Fig. 7, Table I) and must not drift.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dfs/record_io.h"
#include "mapreduce/driver.h"
#include "mapreduce/merge.h"
#include "mapreduce/typed.h"

namespace mrflow::mr {
namespace {

// ------------------------------------------------------------- loser tree

std::vector<std::pair<std::string, size_t>> merge_with_tree(
    const std::vector<std::vector<std::string>>& streams) {
  std::vector<size_t> pos(streams.size(), 0);
  LoserTree tree;
  tree.reset(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    if (!streams[i].empty()) tree.set_key(i, streams[i][0]);
  }
  tree.build();
  std::vector<std::pair<std::string, size_t>> out;
  while (!tree.empty()) {
    size_t w = tree.winner();
    out.emplace_back(streams[w][pos[w]], w);
    if (++pos[w] < streams[w].size()) {
      tree.set_key(w, streams[w][pos[w]]);
    } else {
      tree.exhaust(w);
    }
    tree.replay(w);
  }
  return out;
}

TEST(LoserTree, MergesSortedStreams) {
  auto merged = merge_with_tree({{"a", "c", "e"}, {"b", "d"}, {"f"}});
  std::vector<std::string> keys;
  for (auto& [k, s] : merged) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c", "d", "e", "f"}));
}

TEST(LoserTree, TiesGoToLowestStreamIndex) {
  auto merged = merge_with_tree({{"k", "k"}, {"k"}, {"k", "k", "k"}});
  ASSERT_EQ(merged.size(), 6u);
  // All keys equal: records must come out in stream-index order, and
  // within one stream in stream order.
  std::vector<size_t> sources;
  for (auto& [k, s] : merged) sources.push_back(s);
  EXPECT_EQ(sources, (std::vector<size_t>{0, 0, 1, 2, 2, 2}));
}

TEST(LoserTree, HandlesEmptyAndSingleStreams) {
  EXPECT_TRUE(merge_with_tree({}).empty());
  EXPECT_TRUE(merge_with_tree({{}, {}, {}}).empty());
  auto one = merge_with_tree({{"x"}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].first, "x");
  auto skewed = merge_with_tree({{}, {"a", "b"}, {}, {"a"}, {}});
  ASSERT_EQ(skewed.size(), 3u);
  EXPECT_EQ(skewed[0].second, 1u);  // tie on "a": stream 1 before stream 3
  EXPECT_EQ(skewed[1].second, 3u);
  EXPECT_EQ(skewed[2].first, "b");
}

TEST(LoserTree, RandomizedAgainstStableSort) {
  rng::Xoshiro256 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = 1 + rng.next_below(9);
    std::vector<std::vector<std::string>> streams(k);
    std::vector<std::pair<std::string, size_t>> expected;
    for (size_t i = 0; i < k; ++i) {
      size_t len = rng.next_below(8);  // often tiny, sometimes empty
      for (size_t j = 0; j < len; ++j) {
        streams[i].push_back("key" + std::to_string(rng.next_below(5)));
      }
      std::sort(streams[i].begin(), streams[i].end());
      for (const auto& s : streams[i]) expected.emplace_back(s, i);
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                       return a.first != b.first ? a.first < b.first
                                                 : a.second < b.second;
                     });
    EXPECT_EQ(merge_with_tree(streams), expected) << "trial " << trial;
  }
}

// ------------------------------------------------------------ sorted runs

serde::Bytes frame_records(
    const std::vector<std::pair<std::string, std::string>>& recs) {
  serde::Bytes buf;
  for (const auto& [k, v] : recs) dfs::append_record(buf, k, v);
  return buf;
}

TEST(SortedRun, IndexSortIsStable) {
  serde::Bytes buf = frame_records(
      {{"b", "1"}, {"a", "2"}, {"b", "3"}, {"", "4"}, {"a", "5"}});
  RunSortScratch scratch;
  sort_framed_run(buf, scratch);
  std::vector<std::pair<std::string, std::string>> got;
  dfs::for_each_record(buf, [&](std::string_view k, std::string_view v) {
    got.emplace_back(std::string(k), std::string(v));
  });
  std::vector<std::pair<std::string, std::string>> want = {
      {"", "4"}, {"a", "2"}, {"a", "5"}, {"b", "1"}, {"b", "3"}};
  EXPECT_EQ(got, want);
}

TEST(SortedRun, AlreadySortedAndEdgeCases) {
  RunSortScratch scratch;
  serde::Bytes empty;
  sort_framed_run(empty, scratch);
  EXPECT_TRUE(empty.empty());

  serde::Bytes single = frame_records({{"only", "record"}});
  serde::Bytes single_before = single;
  sort_framed_run(single, scratch);
  EXPECT_EQ(single, single_before);

  serde::Bytes sorted = frame_records({{"a", "1"}, {"b", "2"}, {"c", "3"}});
  serde::Bytes sorted_before = sorted;
  sort_framed_run(sorted, scratch);
  EXPECT_EQ(sorted, sorted_before);
}

// ----------------------------------------------------- differential tests

Cluster make_cluster(int nodes = 3, uint64_t block = 4 << 10) {
  ClusterConfig c;
  c.num_slave_nodes = nodes;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.dfs_block_size = block;
  return Cluster(c);
}

void write_records(
    Cluster& cluster, const std::string& file,
    const std::vector<std::pair<std::string, std::string>>& recs) {
  dfs::RecordWriter w(&cluster.fs(), file);
  for (const auto& [k, v] : recs) w.write(k, v);
  w.close();
}

// The deterministic counters that must be bit-identical across shuffle
// modes (timing fields are real measurements and legitimately differ).
void expect_stats_identical(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.num_map_tasks, b.num_map_tasks);
  EXPECT_EQ(a.num_reduce_tasks, b.num_reduce_tasks);
  EXPECT_EQ(a.map_input_records, b.map_input_records);
  EXPECT_EQ(a.map_output_records, b.map_output_records);
  EXPECT_EQ(a.reduce_input_groups, b.reduce_input_groups);
  EXPECT_EQ(a.reduce_output_records, b.reduce_output_records);
  EXPECT_EQ(a.map_input_bytes, b.map_input_bytes);
  EXPECT_EQ(a.map_output_bytes, b.map_output_bytes);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
  EXPECT_EQ(a.shuffle_bytes_remote, b.shuffle_bytes_remote);
  EXPECT_EQ(a.schimmy_bytes, b.schimmy_bytes);
  EXPECT_EQ(a.output_bytes, b.output_bytes);
  EXPECT_EQ(a.task_retries, b.task_retries);
}

// One engine configuration of the differential grid: scheduling mode ×
// shuffle implementation × map-output spilling (with the eager-fetch
// budget as an extra axis: 0 forces every spilled run to be streamed
// during the merge, a tiny budget mixes buffered and streamed runs) ×
// wire format (compacted/compressed runs, spills and outputs).
struct EngineConfig {
  ExecMode exec;
  ShuffleMode shuffle;
  bool spill = false;
  uint64_t fetch_budget = 8ull << 20;
  const char* label = "";
  codec::WireFormat wire;
};

codec::WireFormat wire_full() {
  return codec::WireFormat{.codec = codec::CodecId::kLz, .compact_keys = true};
}
codec::WireFormat wire_compact_only() {
  return codec::WireFormat{.codec = codec::CodecId::kNone,
                           .compact_keys = true};
}
codec::WireFormat wire_codec_only() {
  return codec::WireFormat{.codec = codec::CodecId::kLz,
                           .compact_keys = false};
}

const std::vector<EngineConfig>& engine_grid() {
  static const std::vector<EngineConfig> grid = {
      {ExecMode::kPipelined, ShuffleMode::kMerge, false, 8ull << 20,
       "pipelined/merge"},
      {ExecMode::kBarrier, ShuffleMode::kMerge, false, 8ull << 20,
       "barrier/merge"},
      {ExecMode::kPipelined, ShuffleMode::kReferenceSort, false, 8ull << 20,
       "pipelined/reference"},
      {ExecMode::kBarrier, ShuffleMode::kReferenceSort, false, 8ull << 20,
       "barrier/reference"},
      {ExecMode::kPipelined, ShuffleMode::kMerge, true, 8ull << 20,
       "pipelined/merge/spill"},
      {ExecMode::kPipelined, ShuffleMode::kMerge, true, 0,
       "pipelined/merge/spill/stream-all"},
      {ExecMode::kPipelined, ShuffleMode::kMerge, true, 200,
       "pipelined/merge/spill/tiny-budget"},
      {ExecMode::kBarrier, ShuffleMode::kMerge, true, 8ull << 20,
       "barrier/merge/spill"},
      {ExecMode::kPipelined, ShuffleMode::kReferenceSort, true, 8ull << 20,
       "pipelined/reference/spill"},
      // Wire-format rows: compared against the same wire-off baseline, so
      // decoded outputs and raw counters must survive compression and key
      // compaction through every path (in-memory merge, spill files,
      // fetch buffers, schimmy, reference oracle).
      {ExecMode::kPipelined, ShuffleMode::kMerge, false, 8ull << 20,
       "pipelined/merge/wire", wire_full()},
      {ExecMode::kPipelined, ShuffleMode::kReferenceSort, false, 8ull << 20,
       "pipelined/reference/wire", wire_full()},
      {ExecMode::kPipelined, ShuffleMode::kMerge, true, 8ull << 20,
       "pipelined/merge/spill/wire", wire_full()},
      {ExecMode::kPipelined, ShuffleMode::kMerge, true, 0,
       "pipelined/merge/spill/stream-all/wire", wire_full()},
      {ExecMode::kPipelined, ShuffleMode::kMerge, true, 200,
       "pipelined/merge/spill/tiny-budget/wire-compact", wire_compact_only()},
      {ExecMode::kBarrier, ShuffleMode::kMerge, true, 8ull << 20,
       "barrier/merge/spill/wire-codec", wire_codec_only()},
  };
  return grid;
}

// Runs `build_spec` across the whole engine grid on fresh identical
// clusters and asserts byte-identical partition files plus identical
// counters against the first (pipelined/merge) configuration.
// build_spec(cluster) must write its own inputs and return the spec(s) to
// run in order; the last spec's outputs are compared. A non-zero fault
// probability exercises the same grid with mid-pipeline task retries.
using SpecBuilder = std::function<std::vector<JobSpec>(Cluster&)>;

void run_differential(const SpecBuilder& build_spec, FaultConfig fault = {}) {
  auto run_config = [&](const EngineConfig& cfg) {
    ClusterConfig c;
    c.num_slave_nodes = 3;
    c.map_slots_per_node = 2;
    c.reduce_slots_per_node = 2;
    c.dfs_block_size = 4 << 10;
    c.reduce_fetch_buffer_bytes = cfg.fetch_budget;
    c.fault = fault;
    if (fault.task_failure_probability > 0) c.max_task_attempts = 12;
    Cluster cluster(c);
    std::vector<JobSpec> specs = build_spec(cluster);
    JobStats last;
    std::string prefix;
    int parts = 0;
    for (auto& spec : specs) {
      spec.shuffle = cfg.shuffle;
      spec.exec = cfg.exec;
      spec.spill_map_outputs = cfg.spill;
      spec.wire = cfg.wire;
      prefix = spec.output_prefix;
      last = run_job(cluster, spec);
      parts = last.num_reduce_tasks;
    }
    // Spill lifecycle: every run was spilled (and counted) iff spilling
    // was on, and all spill files are collected by job end.
    if (cfg.spill) {
      EXPECT_EQ(last.spill_bytes, last.map_output_bytes) << cfg.label;
    } else {
      EXPECT_EQ(last.spill_bytes, 0u) << cfg.label;
    }
    EXPECT_TRUE(cluster.fs().list("__spill__/").empty()) << cfg.label;
    // With the wire format off, the _wire twins must mirror the raw
    // counters exactly.
    if (!cfg.wire.enabled()) {
      EXPECT_EQ(last.shuffle_bytes_wire, last.shuffle_bytes) << cfg.label;
      EXPECT_EQ(last.shuffle_bytes_remote_wire, last.shuffle_bytes_remote)
          << cfg.label;
      EXPECT_EQ(last.schimmy_bytes_wire, last.schimmy_bytes) << cfg.label;
      EXPECT_EQ(last.output_bytes_wire, last.output_bytes) << cfg.label;
      EXPECT_EQ(last.spill_bytes_wire, last.spill_bytes) << cfg.label;
      EXPECT_EQ(last.map_output_bytes_wire, last.map_output_bytes)
          << cfg.label;
    }
    // Compare partitions as decoded records: plain files re-frame to their
    // exact stored bytes, wire-framed files must decode to the same.
    std::vector<serde::Bytes> files;
    for (int r = 0; r < parts; ++r) {
      serde::Bytes decoded;
      dfs::RecordReader reader(&cluster.fs(), partition_file(prefix, r));
      while (auto rec = reader.next()) {
        dfs::append_record(decoded, rec->key, rec->value);
      }
      files.push_back(std::move(decoded));
    }
    return std::make_pair(last, files);
  };

  const auto& grid = engine_grid();
  auto [base_stats, base_files] = run_config(grid[0]);
  for (size_t i = 1; i < grid.size(); ++i) {
    SCOPED_TRACE(grid[i].label);
    auto [stats, files] = run_config(grid[i]);
    expect_stats_identical(base_stats, stats);
    ASSERT_EQ(base_files.size(), files.size());
    for (size_t r = 0; r < base_files.size(); ++r) {
      EXPECT_EQ(base_files[r], files[r]) << "partition " << r;
    }
  }
}

// Random record set: duplicate-heavy keys (small key space), random value
// sizes including empty, occasionally zero records.
std::vector<std::pair<std::string, std::string>> random_records(
    rng::Xoshiro256& rng, size_t max_records, size_t key_space) {
  size_t n = rng.next_below(max_records + 1);
  std::vector<std::pair<std::string, std::string>> recs;
  recs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string key = "k" + std::to_string(rng.next_below(key_space));
    std::string value(rng.next_below(24), 'a' + static_cast<char>(i % 26));
    recs.emplace_back(std::move(key), std::move(value));
  }
  return recs;
}

ReducerFactory concat_reducer() {
  return lambda_reducer(
      [](std::string_view key, const Values& values, ReduceContext& ctx) {
        std::string joined;
        for (std::string_view v : values) {
          joined.append(v);
          joined.push_back('|');
        }
        ctx.emit(key, joined);
      });
}

TEST(ShuffleDifferential, RandomizedPlainJobs) {
  rng::Xoshiro256 rng(101);
  for (int trial = 0; trial < 8; ++trial) {
    auto recs = random_records(rng, 400, 1 + trial * 5);
    // Many reducers on few keys => some reduce partitions stay empty;
    // trial 0 has key_space 1 => single-key, single-group runs.
    int reducers = 1 + static_cast<int>(rng.next_below(6));
    run_differential([&](Cluster& cluster) {
      write_records(cluster, "in", recs);
      JobSpec spec;
      spec.name = "diff-plain";
      spec.inputs = {"in"};
      spec.output_prefix = "out";
      spec.num_reduce_tasks = reducers;
      spec.mapper = identity_mapper();
      spec.reducer = concat_reducer();
      return std::vector<JobSpec>{spec};
    });
  }
}

TEST(ShuffleDifferential, RandomizedWithCombiner) {
  rng::Xoshiro256 rng(202);
  for (int trial = 0; trial < 6; ++trial) {
    auto recs = random_records(rng, 500, 8);
    run_differential([&](Cluster& cluster) {
      write_records(cluster, "in", recs);
      JobSpec spec;
      spec.name = "diff-combine";
      spec.inputs = {"in"};
      spec.output_prefix = "out";
      spec.num_reduce_tasks = 3;
      spec.mapper = lambda_mapper(
          [](std::string_view, std::string_view v, MapContext& ctx) {
            ctx.emit(v.size() % 2 ? "odd" : "even", "1");
            ctx.emit("total", "1");
          });
      auto summing = lambda_reducer(
          [](std::string_view key, const Values& values, ReduceContext& ctx) {
            int64_t total = 0;
            for (std::string_view v : values) {
              total += std::stoll(std::string(v));
            }
            ctx.emit(key, std::to_string(total));
          });
      spec.combiner = summing;
      spec.reducer = summing;
      return std::vector<JobSpec>{spec};
    });
  }
}

TEST(ShuffleDifferential, RandomizedWithSchimmy) {
  rng::Xoshiro256 rng(303);
  for (int trial = 0; trial < 6; ++trial) {
    auto masters = random_records(rng, 60, 12);
    auto frags = random_records(rng, 200, 16);  // wider key space: some keys
                                                // are fragment-only, some
                                                // master-only
    run_differential([&](Cluster& cluster) {
      write_records(cluster, "masters", masters);
      write_records(cluster, "frags", frags);
      JobSpec a;
      a.name = "diff-roundA";
      a.inputs = {"masters"};
      a.output_prefix = "roundA";
      a.num_reduce_tasks = 4;
      a.mapper = identity_mapper();
      a.reducer = concat_reducer();
      JobSpec b;
      b.name = "diff-roundB";
      b.inputs = {"frags"};
      b.output_prefix = "roundB";
      b.num_reduce_tasks = 4;
      b.schimmy_prefix = "roundA";
      b.mapper = identity_mapper();
      b.reducer = concat_reducer();
      return std::vector<JobSpec>{a, b};
    });
  }
}

TEST(ShuffleDifferential, EmptyInputAndEmptyPartitions) {
  run_differential([&](Cluster& cluster) {
    write_records(cluster, "in", {});
    JobSpec spec;
    spec.name = "diff-empty";
    spec.inputs = {"in"};
    spec.output_prefix = "out";
    spec.num_reduce_tasks = 3;
    spec.mapper = identity_mapper();
    spec.reducer = identity_reducer();
    return std::vector<JobSpec>{spec};
  });
  // One record, many reducers: all but one partition empty, single-record
  // runs everywhere.
  run_differential([&](Cluster& cluster) {
    write_records(cluster, "in", {{"solo", "v"}});
    JobSpec spec;
    spec.name = "diff-solo";
    spec.inputs = {"in"};
    spec.output_prefix = "out";
    spec.num_reduce_tasks = 5;
    spec.mapper = identity_mapper();
    spec.reducer = identity_reducer();
    return std::vector<JobSpec>{spec};
  });
}

// Keys engineered so lexicographic order differs from emit order and
// values carry bytes that look like varint frame headers.
TEST(ShuffleDifferential, AdversarialKeysAndValues) {
  std::vector<std::pair<std::string, std::string>> recs;
  recs.emplace_back("", "empty-key");
  recs.emplace_back(std::string(1, '\0'), std::string(3, '\0'));
  recs.emplace_back("\x7f\x80", "\x80\x01");
  recs.emplace_back("", "empty-key-again");
  recs.emplace_back("prefix", "a");
  recs.emplace_back("prefix\x01", "b");
  recs.emplace_back("prefix", "");
  run_differential([&](Cluster& cluster) {
    write_records(cluster, "in", recs);
    JobSpec spec;
    spec.name = "diff-adversarial";
    spec.inputs = {"in"};
    spec.output_prefix = "out";
    spec.num_reduce_tasks = 2;
    spec.mapper = identity_mapper();
    spec.reducer = concat_reducer();
    return std::vector<JobSpec>{spec};
  });
}

// The whole grid must stay byte-identical *under fault injection*: map
// and reduce attempts fail and retry mid-pipeline in every configuration
// (a reduce may already be consuming spilled runs of committed maps while
// another map attempt dies and restarts). The injector hashes only
// (job, phase, task, attempt, seed), so task_retries is a deterministic
// counter that must match exactly across schedules.
TEST(ShuffleDifferential, RandomizedUnderFaultInjection) {
  rng::Xoshiro256 rng(404);
  for (int trial = 0; trial < 3; ++trial) {
    auto recs = random_records(rng, 300, 6);
    FaultConfig fault;
    fault.task_failure_probability = 0.25;
    fault.seed = 1000 + static_cast<uint64_t>(trial);
    run_differential(
        [&](Cluster& cluster) {
          write_records(cluster, "in", recs);
          JobSpec spec;
          spec.name = "diff-faults";
          spec.inputs = {"in"};
          spec.output_prefix = "out";
          spec.num_reduce_tasks = 4;
          spec.mapper = identity_mapper();
          spec.reducer = concat_reducer();
          return std::vector<JobSpec>{spec};
        },
        fault);
  }
}

// Faults on a schimmy chain: reduce retries must re-stream both the
// previous round's partition and (when spilling) the spill files, which
// persist until job end exactly for this restartability.
TEST(ShuffleDifferential, SchimmyUnderFaultInjection) {
  rng::Xoshiro256 rng(505);
  auto masters = random_records(rng, 50, 10);
  auto frags = random_records(rng, 150, 14);
  FaultConfig fault;
  fault.task_failure_probability = 0.25;
  fault.seed = 77;
  run_differential(
      [&](Cluster& cluster) {
        write_records(cluster, "masters", masters);
        write_records(cluster, "frags", frags);
        JobSpec a;
        a.name = "diff-faults-roundA";
        a.inputs = {"masters"};
        a.output_prefix = "roundA";
        a.num_reduce_tasks = 4;
        a.mapper = identity_mapper();
        a.reducer = concat_reducer();
        JobSpec b;
        b.name = "diff-faults-roundB";
        b.inputs = {"frags"};
        b.output_prefix = "roundB";
        b.num_reduce_tasks = 4;
        b.schimmy_prefix = "roundA";
        b.mapper = identity_mapper();
        b.reducer = concat_reducer();
        return std::vector<JobSpec>{a, b};
      },
      fault);
}

// The merge path must enforce the same schimmy sort contract as the
// reference (mr_engine_test covers the reference; this pins the merge).
TEST(ShuffleDifferential, MergeRejectsUnsortedSchimmy) {
  Cluster cluster = make_cluster();
  const int parts = 2;
  Partitioner part = default_partitioner();
  std::vector<std::pair<std::string, std::string>> keys;
  for (int i = 0; i < 100 && keys.size() < 2; ++i) {
    std::string k = "key" + std::to_string(i);
    if (part(k, parts) == 0) keys.emplace_back(k, "v");
  }
  ASSERT_EQ(keys.size(), 2u);
  std::sort(keys.begin(), keys.end());
  std::swap(keys[0], keys[1]);  // break the order
  {
    dfs::RecordWriter w(&cluster.fs(), partition_file("bad", 0));
    for (auto& [k, v] : keys) w.write(k, v);
    w.close();
    dfs::RecordWriter w1(&cluster.fs(), partition_file("bad", 1));
    w1.close();
  }
  write_records(cluster, "in", {{"0", "x"}});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.num_reduce_tasks = parts;
  spec.schimmy_prefix = "bad";
  spec.shuffle = ShuffleMode::kMerge;
  spec.mapper = lambda_mapper(
      [](std::string_view, std::string_view, MapContext&) {});
  spec.reducer = identity_reducer();
  EXPECT_THROW(run_job(cluster, spec), std::logic_error);
}

// ------------------------------------------------------- wire corruption

// Flips one checksum byte of the frame spanning the wire stream's
// midpoint. Deterministic DecodeError: a payload bit-flip can alias to
// identical bytes under LZ (a moved match offset can point at an equal
// copy), but a checksum flip always mismatches. Frame layout per
// common/codec.h: u8 codec id | varint raw_len | varint wire_len |
// u64le checksum | payload.
void corrupt_midpoint_frame(serde::Bytes& wire) {
  ASSERT_FALSE(wire.empty());
  size_t off = 0;
  while (true) {
    size_t p = off + 1;
    uint64_t lens[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
      int s = 0;
      while (static_cast<unsigned char>(wire[p]) & 0x80) {
        lens[i] |= static_cast<uint64_t>(
                       static_cast<unsigned char>(wire[p]) & 0x7f)
                   << s;
        s += 7;
        ++p;
      }
      lens[i] |= static_cast<uint64_t>(static_cast<unsigned char>(wire[p]))
                 << s;
      ++p;
    }
    size_t next = p + 8 + lens[1];
    if (next >= wire.size() || next > wire.size() / 2) {
      wire[p] ^= 0x01;  // first checksum byte
      return;
    }
    off = next;
  }
}

// A flipped byte inside a compacted run surfaces DecodeError mid-cursor:
// records before the corrupt frame still decode, the bad frame throws.
TEST(WireCorruption, CursorSurfacesDecodeErrorMidRun) {
  std::vector<std::pair<std::string, std::string>> recs;
  for (int i = 0; i < 2000; ++i) {
    recs.emplace_back("key" + std::to_string(100000 + i),
                      "value-" + std::to_string(i));
  }
  serde::Bytes run = frame_records(recs);
  RunSortScratch sort_scratch;
  sort_framed_run(run, sort_scratch);
  codec::WireFormat fmt{.codec = codec::CodecId::kLz, .compact_keys = true};
  fmt.block_bytes = 4 << 10;  // several frames
  serde::Bytes scratch;
  compact_sorted_run(run, fmt, scratch);

  // Sanity: the intact wire run yields every record.
  {
    WireRunCursor cursor{std::string_view(run)};
    size_t n = 0;
    while (cursor.advance()) ++n;
    ASSERT_EQ(n, recs.size());
  }

  serde::Bytes corrupt = run;
  corrupt_midpoint_frame(corrupt);
  WireRunCursor cursor{std::string_view(corrupt)};
  size_t decoded = 0;
  try {
    while (cursor.advance()) ++decoded;
    FAIL() << "corrupt frame decoded cleanly";
  } catch (const serde::DecodeError&) {
    // Frames before the corrupt one must have streamed out fine.
    EXPECT_GT(decoded, 0u);
    EXPECT_LT(decoded, recs.size());
  }
}

// A corrupt wire-framed schimmy partition must fail the job with
// DecodeError from inside the streaming loser-tree merge (not hang, not
// emit garbage).
TEST(WireCorruption, JobSurfacesDecodeErrorMidMerge) {
  Cluster cluster = make_cluster();
  codec::WireFormat fmt{.codec = codec::CodecId::kLz, .compact_keys = true};

  // Produce a legitimate wire-framed previous-round partition.
  std::vector<std::pair<std::string, std::string>> masters;
  for (int i = 0; i < 500; ++i) {
    masters.emplace_back("m" + std::to_string(10000 + i), "master-value");
  }
  {
    JobSpec a;
    a.name = "corrupt-roundA";
    a.inputs = {"masters"};
    a.output_prefix = "roundA";
    a.num_reduce_tasks = 2;
    a.mapper = identity_mapper();
    a.reducer = identity_reducer();
    a.wire = fmt;
    write_records(cluster, "masters", masters);
    run_job(cluster, a);
  }

  // Flip one byte in the stored frames of partition 0 and rewrite the
  // file with the same wire-framed metadata.
  const std::string victim = partition_file("roundA", 0);
  serde::Bytes stored = cluster.fs().read_all(victim);
  ASSERT_FALSE(stored.empty());
  uint64_t raw_size = cluster.fs().raw_file_size(victim);
  corrupt_midpoint_frame(stored);
  {
    dfs::FileWriter w =
        cluster.fs().create(victim, dfs::CreateOptions{.wire_framed = true});
    w.append(stored);
    w.set_raw_bytes(raw_size);
    w.close();
  }

  JobSpec b;
  b.name = "corrupt-roundB";
  b.inputs = {"masters"};
  b.output_prefix = "roundB";
  b.num_reduce_tasks = 2;
  b.schimmy_prefix = "roundA";
  b.shuffle = ShuffleMode::kMerge;
  b.mapper = identity_mapper();
  b.reducer = identity_reducer();
  b.wire = fmt;
  EXPECT_THROW(run_job(cluster, b), serde::DecodeError);
}

// On compressible sorted runs the wire image must actually shrink: the
// grid above proves correctness, this pins the point of the feature.
TEST(WireCompaction, ShrinksShuffleWireBytes) {
  std::vector<std::pair<std::string, std::string>> recs;
  for (int i = 0; i < 3000; ++i) {
    recs.emplace_back("vertex-" + std::to_string(1000000 + i),
                      "payload-payload-payload-" + std::to_string(i % 7));
  }
  Cluster cluster = make_cluster();
  write_records(cluster, "in", recs);
  JobSpec spec;
  spec.name = "wire-ratio";
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.num_reduce_tasks = 3;
  spec.mapper = identity_mapper();
  spec.reducer = identity_reducer();
  spec.wire = codec::WireFormat{.codec = codec::CodecId::kLz,
                                .compact_keys = true};
  JobStats stats = run_job(cluster, spec);
  ASSERT_GT(stats.shuffle_bytes, 0u);
  EXPECT_LT(stats.shuffle_bytes_wire, stats.shuffle_bytes * 7 / 10);
  EXPECT_LT(stats.output_bytes_wire, stats.output_bytes * 7 / 10);
}

}  // namespace
}  // namespace mrflow::mr
