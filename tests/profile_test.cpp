// Tests for the critical-path profiler (common/profile.h), the blame-sum
// invariant run_job() guarantees, histogram percentile accuracy and the
// Prometheus exposition, and the flight recorder's post-mortem dump.
//
// The load-bearing invariant: run_job() derives the blame breakdown from
// stacked makespans, so the categories must telescope to sim_seconds --
// not approximately ("the model explains most of the time") but to
// floating-point rounding, across scheduling modes (barrier/pipelined),
// topologies (flat/racked), and chaos shapes. A drift means a cost term
// was added to the engine without being attributed, which is exactly the
// bug class the profiler exists to prevent.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/profile.h"
#include "common/rng.h"
#include "ffmr/solver.h"
#include "flow/certify.h"
#include "graph/generators.h"

namespace mrflow {
namespace {

using common::BlameCategory;
using common::TaskDag;

// ------------------------------------------------------------- TaskDag

TEST(TaskDagTest, ChainCriticalPathSumsDurations) {
  TaskDag dag;
  // 3-node chain with durations 10, 20, 30 (ns).
  auto a = dag.add_node("map", 0, 100, 110);
  auto b = dag.add_node("fetch", 0, 110, 130);
  auto c = dag.add_node("reduce", 0, 130, 160);
  dag.add_edge(a, b);
  dag.add_edge(b, c);

  auto cp = dag.critical_path();
  EXPECT_EQ(cp.total_ns, 60u);
  ASSERT_EQ(cp.path.size(), 3u);
  EXPECT_EQ(cp.path[0], a);
  EXPECT_EQ(cp.path[1], b);
  EXPECT_EQ(cp.path[2], c);
  // Every node on the only chain has zero slack.
  EXPECT_EQ(cp.zero_slack_nodes, 3u);
  for (auto id : cp.path) EXPECT_EQ(cp.slack_ns[id], 0u);
}

TEST(TaskDagTest, DiamondPicksHeavierBranchAndSlacksTheOther) {
  TaskDag dag;
  auto src = dag.add_node("map", 0, 0, 10);      // 10
  auto light = dag.add_node("map", 1, 10, 15);   // 5
  auto heavy = dag.add_node("map", 2, 10, 50);   // 40
  auto sink = dag.add_node("reduce", 0, 50, 70); // 20
  dag.add_edge(src, light);
  dag.add_edge(src, heavy);
  dag.add_edge(light, sink);
  dag.add_edge(heavy, sink);

  auto cp = dag.critical_path();
  EXPECT_EQ(cp.total_ns, 70u);  // src + heavy + sink
  ASSERT_EQ(cp.path.size(), 3u);
  EXPECT_EQ(cp.path[1], heavy);
  // The light branch could stretch by the branch difference before moving
  // the critical path.
  EXPECT_EQ(cp.slack_ns[light], 35u);
  EXPECT_EQ(cp.slack_ns[heavy], 0u);
}

TEST(TaskDagTest, EdgesAgainstSchedulingOrderAreIgnored) {
  TaskDag dag;
  auto a = dag.add_node("map", 0, 0, 10);
  auto b = dag.add_node("map", 1, 0, 20);
  dag.add_edge(b, a);  // backwards: dropped, not a cycle
  dag.add_edge(a, a);  // self-loop: dropped
  EXPECT_EQ(dag.num_edges(), 0u);
  auto cp = dag.critical_path();
  EXPECT_EQ(cp.total_ns, 20u);  // heaviest single node
}

TEST(TaskDagTest, LabelsNameKindAndIndex) {
  TaskDag dag;
  auto m = dag.add_node("map", 3, 0, 1);
  auto bar = dag.add_node("maps_done", -1, 1, 2);
  EXPECT_EQ(dag.node(m).label(), "map#3");
  EXPECT_EQ(dag.node(bar).label(), "maps_done");
}

// ------------------------------------------------------ BlameBreakdown

TEST(BlameBreakdownTest, SumTopAndJson) {
  common::BlameBreakdown b;
  b[BlameCategory::kMapCompute] = 2.0;
  b[BlameCategory::kCodec] = 5.0;
  b[BlameCategory::kStragglerWait] = 1.0;
  EXPECT_DOUBLE_EQ(b.sum(), 8.0);
  EXPECT_EQ(b.top(), BlameCategory::kCodec);
  EXPECT_STREQ(b.top_name(), "codec");

  std::string json = b.to_json();
  EXPECT_NE(json.find("\"codec_s\":5"), std::string::npos);
  EXPECT_NE(json.find("\"map_compute_s\":2"), std::string::npos);
  // Masked rendering keeps the keys but zeroes the values.
  std::string masked = b.to_json(/*zeroed=*/true);
  EXPECT_NE(masked.find("\"codec_s\":0"), std::string::npos);
  EXPECT_EQ(masked.find("5"), std::string::npos);
}

// ------------------------------------------- histogram percentiles

TEST(HistogramPercentiles, BoundedByBucketGeometryOnUniformData) {
  common::Histogram h;
  for (uint64_t v = 1; v <= 4096; ++v) h.record(v);
  // Power-of-two buckets: the interpolated quantile must land within the
  // bucket that holds the true quantile, i.e. within 2x either way.
  for (double q : {0.50, 0.95, 0.99}) {
    double truth = q * 4096;
    double est = h.quantile(q);
    EXPECT_GE(est, truth / 2) << "q=" << q;
    EXPECT_LE(est, truth * 2) << "q=" << q;
  }
  // Monotone in q.
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(h.count(), 4096u);
  EXPECT_EQ(h.sum(), uint64_t{4096} * 4097 / 2);
}

TEST(HistogramPercentiles, DegenerateDistributions) {
  common::Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  common::Histogram point;
  for (int i = 0; i < 100; ++i) point.record(7);
  // All mass in bucket [4, 8): every quantile interpolates inside it.
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_GE(point.quantile(q), 4.0);
    EXPECT_LE(point.quantile(q), 8.0);
  }

  common::Histogram zeros;
  zeros.record(0);
  zeros.record(0);
  EXPECT_EQ(zeros.quantile(0.5), 0.0);  // bucket 0 is exactly {0}
}

TEST(PrometheusText, RendersHistogramsQuantilesAndGauges) {
  common::MetricsSnapshot snap;
  auto& h = snap.histograms["shuffle.fetch_us"];
  for (uint64_t v : {1, 2, 3, 100, 1000}) h.record(v);
  snap.gauges["queue.hwm"] = 42;

  std::string text = snap.to_prometheus_text();
  // Sanitized, prefixed names; cumulative buckets ending in +Inf == count.
  EXPECT_NE(text.find("mrflow_shuffle_fetch_us_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("mrflow_shuffle_fetch_us_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("mrflow_shuffle_fetch_us_sum 1106"), std::string::npos);
  EXPECT_NE(text.find("mrflow_shuffle_fetch_us_count 5"), std::string::npos);
  EXPECT_NE(text.find("mrflow_shuffle_fetch_us_p50"), std::string::npos);
  EXPECT_NE(text.find("mrflow_shuffle_fetch_us_p99"), std::string::npos);
  EXPECT_NE(text.find("mrflow_queue_hwm 42"), std::string::npos);
  // No unsanitized dots survive in metric names.
  EXPECT_EQ(text.find("mrflow_shuffle.fetch"), std::string::npos);
}

// ------------------------------------------------- blame-sum invariant

using ffmr::WireChoice;

struct BlameCase {
  const char* name;
  bool pipelined;     // spill_map_outputs => eager fetches, overlap
  int racks;          // 1 = flat
  const char* shape;  // FaultConfig shape, nullptr = fault-free
  WireChoice wire = WireChoice::kOff;
};

class BlameSweep : public ::testing::TestWithParam<BlameCase> {};

std::string blame_name(const ::testing::TestParamInfo<BlameCase>& info) {
  return info.param.name;
}

TEST_P(BlameSweep, CategoriesTelescopeToSimSeconds) {
  const BlameCase& c = GetParam();
  graph::Graph g = graph::watts_strogatz(90, 4, 0.25, 11);

  mr::ClusterConfig config;
  config.num_slave_nodes = 4;
  config.map_slots_per_node = 2;
  config.reduce_slots_per_node = 2;
  config.dfs_block_size = 32 << 10;
  config.num_racks = c.racks;
  if (c.racks > 1) config.cost.inter_rack_mbps = config.cost.network_mbps / 4;
  if (c.shape != nullptr) {
    config.fault = mr::FaultConfig::shape(c.shape, 0.2, 5);
    config.max_task_attempts = 8;
  }

  ffmr::FfmrOptions o;
  o.variant = ffmr::Variant::FF5;
  o.async_augmenter = false;
  o.spill_map_outputs = c.pipelined;
  o.wire = c.wire;
  if (c.shape != nullptr && std::string_view(c.shape) == "corrupt") {
    o.wire = WireChoice::kOn;
  }

  mr::Cluster cluster(config);
  ffmr::FfmrResult result = ffmr::solve_max_flow(cluster, g, 0, 45, o);
  ASSERT_TRUE(result.converged);
  ASSERT_FALSE(result.rounds_info.empty());

  // The chaos runs still produce a certified answer while their blame is
  // being attributed -- profiling must never perturb the engine.
  flow::Certificate cert = flow::certify_max_flow(g, 0, 45, result.assignment);
  EXPECT_TRUE(cert.valid()) << cert.summary();

  for (const auto& info : result.rounds_info) {
    const mr::JobStats& stats = info.stats;
    const double sum = stats.blame.sum();
    // The construction telescopes exactly; 1e-6 relative leaves three
    // orders of magnitude of headroom over accumulated FP rounding while
    // still catching any genuinely unattributed cost term. (ISSUE
    // acceptance is 1%; this pins much tighter.)
    EXPECT_NEAR(sum, stats.sim_seconds,
                1e-6 * std::max(1.0, stats.sim_seconds))
        << "round " << info.round;
    // Categories are non-negative up to rounding: LPT level deltas can
    // only dip below zero by FP noise.
    for (size_t i = 0; i < common::BlameBreakdown::kCategories; ++i) {
      EXPECT_GE(stats.blame.seconds[i], -1e-9) << "category " << i;
    }
    EXPECT_GT(stats.critical_path_ms, 0.0);
    // The critical path is a chain through work that really ran, so it
    // cannot exceed the job's wall time (modulo timer granularity).
    EXPECT_LE(stats.critical_path_ms, stats.wall_seconds * 1000.0 * 1.05);
  }

  // Shape-specific attribution: the category the injected cost lands in
  // must actually receive blame somewhere in the solve.
  common::BlameBreakdown total;
  for (const auto& info : result.rounds_info) total.add(info.stats.blame);
  if (c.shape != nullptr && std::string_view(c.shape) == "straggler") {
    EXPECT_GT(total[BlameCategory::kStragglerWait], 0.0);
  }
  if (c.shape != nullptr && std::string_view(c.shape) == "rpc") {
    EXPECT_GT(total[BlameCategory::kAugmenterRpc], 0.0);
  }
  if (c.wire == WireChoice::kOn) {
    EXPECT_GT(total[BlameCategory::kCodec], 0.0);
  }
  EXPECT_GT(total[BlameCategory::kSchedulerIdle], 0.0);
  EXPECT_GT(total[BlameCategory::kMapCompute], 0.0);
  EXPECT_GT(total[BlameCategory::kReduceCompute], 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, BlameSweep,
    ::testing::Values(
        BlameCase{"barrier_flat", false, 1, nullptr},
        BlameCase{"pipelined_flat", true, 1, nullptr},
        BlameCase{"barrier_racks", false, 2, nullptr},
        BlameCase{"pipelined_racks", true, 2, nullptr},
        BlameCase{"pipelined_racks_wire", true, 2, nullptr, WireChoice::kOn},
        BlameCase{"chaos_straggler", true, 2, "straggler"},
        BlameCase{"chaos_rpc", false, 1, "rpc"},
        BlameCase{"chaos_task", true, 1, "task"}),
    blame_name);

// --------------------------------------------------- profile collector

TEST(ProfileCollector, ReportSkeletonIsByteStableAcrossReplays) {
  auto& collector = common::ProfileCollector::global();

  auto run_report = [&] {
    collector.set_enabled(true);
    collector.clear();
    graph::Graph g = graph::watts_strogatz(70, 4, 0.25, 9);
    mr::ClusterConfig config;
    config.num_slave_nodes = 3;
    config.dfs_block_size = 32 << 10;
    mr::Cluster cluster(config);
    ffmr::FfmrOptions o;
    o.variant = ffmr::Variant::FF5;
    o.async_augmenter = false;
    ffmr::solve_max_flow(cluster, g, 0, 35, o);
    // include_timing=false masks every measured value; what remains --
    // job names, task counts, byte counters, category names -- is a pure
    // function of the deterministic engine.
    std::string skeleton = collector.report_json(/*include_timing=*/false);
    collector.clear();
    collector.set_enabled(false);
    return skeleton;
  };

  std::string first = run_report();
  std::string second = run_report();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "deterministic replay changed the profile "
                              "report skeleton";
  // The skeleton still carries the structure...
  EXPECT_NE(first.find("\"profile_version\":1"), std::string::npos);
  EXPECT_NE(first.find("\"blame\""), std::string::npos);
  EXPECT_NE(first.find("\"shuffle_bytes\""), std::string::npos);
  // ...but none of the timing (spot-check: masked reports zero these).
  EXPECT_NE(first.find("\"sim_s\":0"), std::string::npos);
  EXPECT_NE(first.find("\"critical_path_ms\":0"), std::string::npos);
}

TEST(ProfileCollector, DisabledCollectsNothing) {
  auto& collector = common::ProfileCollector::global();
  collector.set_enabled(false);
  collector.clear();
  graph::Graph g = graph::watts_strogatz(50, 4, 0.25, 2);
  mr::ClusterConfig config;
  config.num_slave_nodes = 2;
  mr::Cluster cluster(config);
  ffmr::FfmrOptions o;
  o.variant = ffmr::Variant::FF5;
  ffmr::solve_max_flow(cluster, g, 0, 25, o);
  EXPECT_EQ(collector.size(), 0u);
}

// ----------------------------------------------------- flight recorder

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

TEST(FlightRecorder, RingBoundsAndDumpShape) {
  namespace fr = common::flight_recorder;
  fr::clear();
  for (int i = 0; i < 5000; ++i) {
    fr::note("test.spam", "note " + std::to_string(i));
  }
  EXPECT_GT(fr::overwritten_count(), 0u);  // ring wrapped, oldest lost
  std::string doc = fr::dump_json("unit-test");
  EXPECT_NE(doc.find("\"flight_recorder_version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(doc.find("note 4999"), std::string::npos);  // newest survives
  EXPECT_EQ(doc.find("\"note 0\""), std::string::npos); // oldest dropped
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  fr::clear();
}

TEST(FlightRecorder, ChaosAbortWritesReadablePostMortem) {
  namespace fr = common::flight_recorder;
  fr::clear();
  std::string path = ::testing::TempDir() + "/flight_abort." +
                     std::to_string(::getpid()) + ".json";
  fr::set_auto_dump_path(path);

  // Certain death: every attempt crashes and there are no retries.
  graph::Graph g = graph::watts_strogatz(50, 4, 0.25, 4);
  mr::ClusterConfig config;
  config.num_slave_nodes = 2;
  config.max_task_attempts = 1;
  config.fault = mr::FaultConfig::shape("task", 1.0, 3);
  mr::Cluster cluster(config);
  ffmr::FfmrOptions o;
  o.variant = ffmr::Variant::FF5;
  EXPECT_THROW(ffmr::solve_max_flow(cluster, g, 0, 25, o), std::exception);

  std::string doc = read_all(path);
  ASSERT_FALSE(doc.empty()) << "no post-mortem dump at " << path;
  // The dump names the trigger and carries the abort diagnosis plus the
  // notes leading up to it -- enough to reconstruct what died, where.
  // trigger() composes the reason as "<kind>: <detail>".
  EXPECT_NE(doc.find("\"reason\":\"fault.abort"), std::string::npos);
  EXPECT_NE(doc.find("no retries left"), std::string::npos);
  EXPECT_NE(doc.find("\"notes\""), std::string::npos);
  EXPECT_NE(doc.find("\"trace\""), std::string::npos);

  fr::set_auto_dump_path("");
  fr::clear();
  std::remove(path.c_str());
}

TEST(FlightRecorder, TriggerWithoutArmedPathOnlyNotes) {
  namespace fr = common::flight_recorder;
  fr::clear();
  fr::set_auto_dump_path("");
  EXPECT_FALSE(fr::trigger("test.kind", "nothing should be written"));
  EXPECT_GE(fr::note_count(), 1u);  // the trigger itself is noted
  fr::clear();
}

}  // namespace
}  // namespace mrflow
