// Differential tests for the dispatched hot-path kernels (common/cpuid.h):
// every SIMD kernel must be byte-identical to its scalar twin on all
// inputs, including every small length and error case -- the dispatch may
// change speed, never bytes. Also covers the zero-copy ownership
// contracts: pinned DFS reads must survive file removal, and borrow-mode
// block decoding must not read a source chunk after the next pull.
#include <gtest/gtest.h>

#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/cpuid.h"
#include "common/hash.h"
#include "common/serde.h"
#include "dfs/dfs.h"
#include "dfs/record_io.h"
#include "mapreduce/job.h"

namespace mrflow {
namespace {

using serde::Bytes;

// Runs `body` once with the scalar twins forced and once with the full
// dispatched kernels, restoring the force flag afterwards.
template <typename Body>
void with_both_levels(const Body& body) {
  common::cpuid::set_force_scalar(true);
  body(/*scalar=*/true);
  common::cpuid::set_force_scalar(false);
  body(/*scalar=*/false);
}

struct ForceScalarGuard {
  explicit ForceScalarGuard(bool on) {
    common::cpuid::set_force_scalar(on);
  }
  ~ForceScalarGuard() { common::cpuid::set_force_scalar(false); }
};

// --------------------------------------------------------------- dispatch

TEST(Cpuid, ForceScalarClampsLevel) {
  ForceScalarGuard guard(true);
  EXPECT_EQ(common::cpuid::simd_level(), common::cpuid::SimdLevel::kScalar);
  common::cpuid::set_force_scalar(false);
  EXPECT_EQ(common::cpuid::simd_level(), common::cpuid::hardware_level());
  EXPECT_GE(common::cpuid::hardware_level(),
            common::cpuid::SimdLevel::kScalar);
}

TEST(Cpuid, LevelNamesAreStable) {
  EXPECT_STREQ(common::cpuid::level_name(common::cpuid::SimdLevel::kScalar),
               "scalar");
  EXPECT_STREQ(common::cpuid::level_name(common::cpuid::SimdLevel::kSse2),
               "sse2");
  EXPECT_STREQ(common::cpuid::level_name(common::cpuid::SimdLevel::kAvx2),
               "avx2");
}

// ------------------------------------------------------------------ codec

// Inputs that exercise the match kernels: every length 0..512 of (a) a
// periodic highly compressible pattern, (b) random bytes, (c) runs (RLE,
// offset-1 matches), plus larger randomized mixes.
std::vector<Bytes> codec_corpus() {
  std::vector<Bytes> corpus;
  std::mt19937_64 rng(42);
  for (size_t len = 0; len <= 512; ++len) {
    Bytes periodic, random, rle;
    for (size_t i = 0; i < len; ++i) {
      periodic.push_back(static_cast<char>('a' + (i % 7)));
      random.push_back(static_cast<char>(rng() & 0xFF));
      rle.push_back(static_cast<char>(i < len / 2 ? 'x' : 'y'));
    }
    corpus.push_back(std::move(periodic));
    if (len % 17 == 0) corpus.push_back(std::move(random));
    if (len % 31 == 0) corpus.push_back(std::move(rle));
  }
  // Larger mixed payloads: compressible text with random gaps, so matches
  // of many lengths and offsets occur (including >32-byte AVX2 copies).
  for (int round = 0; round < 8; ++round) {
    Bytes mix;
    while (mix.size() < (16u << 10)) {
      if (rng() % 3 == 0) {
        for (int i = 0; i < 64; ++i) mix.push_back(static_cast<char>(rng()));
      } else {
        mix += "the quick brown fox jumps over the lazy dog ";
        mix += std::string(1 + rng() % 90, static_cast<char>('A' + rng() % 26));
      }
    }
    corpus.push_back(std::move(mix));
  }
  return corpus;
}

TEST(SimdCodec, CompressIsByteIdenticalAcrossLevels) {
  for (const Bytes& raw : codec_corpus()) {
    Bytes wire_scalar, wire_simd;
    {
      ForceScalarGuard guard(true);
      codec::lz_compress(raw, wire_scalar);
    }
    codec::lz_compress(raw, wire_simd);
    ASSERT_EQ(wire_scalar, wire_simd) << "len=" << raw.size();
  }
}

TEST(SimdCodec, DecompressRoundTripsAtEveryLevel) {
  for (const Bytes& raw : codec_corpus()) {
    Bytes wire;
    codec::lz_compress(raw, wire);
    with_both_levels([&](bool scalar) {
      Bytes out;
      codec::lz_decompress(wire, raw.size(), out);
      ASSERT_EQ(out, raw) << "len=" << raw.size() << " scalar=" << scalar;
    });
  }
}

TEST(SimdCodec, DecompressCrossLevelWire) {
  // Wire produced under one level must decode under the other.
  for (const Bytes& raw : codec_corpus()) {
    Bytes wire;
    {
      ForceScalarGuard guard(true);
      codec::lz_compress(raw, wire);
    }
    Bytes out;
    codec::lz_decompress(wire, raw.size(), out);
    ASSERT_EQ(out, raw);
  }
}

TEST(SimdCodec, DecompressErrorsMatchAcrossLevels) {
  Bytes raw(1000, 'q');
  for (size_t i = 0; i < 200; ++i) {
    raw[i * 5] = static_cast<char>(i);
  }
  Bytes wire;
  codec::lz_compress(raw, wire);
  // Truncations and wrong raw lengths must throw at every level.
  for (size_t cut : {size_t{0}, size_t{1}, wire.size() / 2, wire.size() - 1}) {
    with_both_levels([&](bool scalar) {
      Bytes out;
      EXPECT_THROW(
          codec::lz_decompress(std::string_view(wire).substr(0, cut),
                               raw.size(), out),
          serde::DecodeError)
          << "cut=" << cut << " scalar=" << scalar;
    });
  }
  with_both_levels([&](bool) {
    Bytes out;
    EXPECT_THROW(codec::lz_decompress(wire, raw.size() + 1, out),
                 serde::DecodeError);
    EXPECT_THROW(codec::lz_decompress(wire, raw.size() - 1, out),
                 serde::DecodeError);
  });
}

TEST(SimdCodec, FrameChecksumPinned) {
  // Seed-0 xxHash64 is the frame-checksum wire contract.
  EXPECT_EQ(codec::xxhash64(""), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(codec::xxhash64("abc"), 0x44BC2CF5AD770999ull);
}

// ----------------------------------------------------------------- varint

// Encodes `values`, then decodes with get_varints under both levels and
// with the per-element reference, asserting identical values, final
// positions and error behavior.
void check_varint_batch(const std::vector<uint64_t>& values) {
  Bytes buf;
  {
    serde::ByteWriter w(&buf);
    for (uint64_t v : values) w.put_varint(v);
  }
  // Reference: per-element decode.
  std::vector<uint64_t> ref(values.size());
  serde::ByteReader rr(buf);
  for (size_t i = 0; i < values.size(); ++i) ref[i] = rr.get_varint();
  ASSERT_EQ(ref, values);

  with_both_levels([&](bool scalar) {
    std::vector<uint64_t> out(values.size());
    serde::ByteReader r(buf);
    r.get_varints(std::span<uint64_t>(out));
    ASSERT_EQ(out, values) << "n=" << values.size() << " scalar=" << scalar;
    ASSERT_EQ(r.pos(), rr.pos()) << "scalar=" << scalar;
  });
}

TEST(SimdVarint, EveryCountSmallValues) {
  // Single-byte varints: the all-singles fast path, every batch size that
  // straddles the 8-per-refill window.
  for (size_t n = 0; n <= 40; ++n) {
    std::vector<uint64_t> values;
    for (size_t i = 0; i < n; ++i) values.push_back(i % 128);
    check_varint_batch(values);
  }
}

TEST(SimdVarint, EveryWidthStragglers) {
  // Mix single-byte and multi-byte varints at every alignment so the
  // straggler handoff (wide window -> shared get_varint) hits every phase.
  for (size_t wide_at = 0; wide_at < 16; ++wide_at) {
    for (uint64_t big :
         {uint64_t{200}, uint64_t{1} << 20, uint64_t{1} << 45, ~uint64_t{0}}) {
      std::vector<uint64_t> values;
      for (size_t i = 0; i < 24; ++i) {
        values.push_back(i % 8 == wide_at % 8 ? big + i : i);
      }
      check_varint_batch(values);
    }
  }
}

TEST(SimdVarint, RandomizedFuzz) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 200; ++round) {
    std::vector<uint64_t> values(rng() % 64);
    for (auto& v : values) {
      int width_bits = static_cast<int>(rng() % 64);
      v = rng() & ((width_bits == 63) ? ~uint64_t{0}
                                      : ((uint64_t{1} << (width_bits + 1)) - 1));
    }
    check_varint_batch(values);
  }
}

TEST(SimdVarint, TruncatedInputThrowsIdentically) {
  Bytes buf;
  {
    serde::ByteWriter w(&buf);
    for (int i = 0; i < 10; ++i) w.put_varint(uint64_t{1} << 40);  // 6 bytes
  }
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view trunc = std::string_view(buf).substr(0, cut);
    // Reference: how many full varints decode.
    size_t ref_ok = 0;
    {
      serde::ByteReader r(trunc);
      try {
        for (int i = 0; i < 10; ++i) {
          r.get_varint();
          ++ref_ok;
        }
      } catch (const serde::DecodeError&) {
      }
    }
    with_both_levels([&](bool scalar) {
      std::vector<uint64_t> out(10);
      serde::ByteReader r(trunc);
      if (ref_ok == 10) {
        EXPECT_NO_THROW(r.get_varints(std::span<uint64_t>(out)));
      } else {
        EXPECT_THROW(r.get_varints(std::span<uint64_t>(out)),
                     serde::DecodeError)
            << "cut=" << cut << " scalar=" << scalar;
      }
    });
  }
}

// ------------------------------------------------------------------- hash

TEST(SimdHash, BatchMatchesScalarHash) {
  std::mt19937_64 rng(11);
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) {
    keys.push_back(std::string(rng() % 40, 'k') + std::to_string(rng()));
  }
  std::vector<std::string_view> views(keys.begin(), keys.end());
  // Batch sizes around the ILP-4 unroll and the remainder loop.
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                   size_t{7}, size_t{64}, views.size()}) {
    with_both_levels([&](bool scalar) {
      std::vector<uint64_t> out(n);
      hash::stable_hash_batch(views.data(), n, out.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], hash::stable_hash(views[i]))
            << "i=" << i << " scalar=" << scalar;
      }
    });
  }
}

TEST(SimdHash, PartitionHashGoldenPins) {
  // V1 partition hash: xxHash64 under the pinned seed. These values may
  // never change for existing partitioned data; a new scheme must add a
  // V2 seed (common/hash.h).
  EXPECT_EQ(hash::kPartitionSeedV1, 0x9E3779B97F4A7C15ull);
  EXPECT_EQ(hash::stable_hash(""), 0xC4349FC93C010000ull);
  EXPECT_EQ(hash::stable_hash("abc"), 0x2ED0F59D6B43AC8Bull);
  // Legacy FNV-1a stays available (fault-injection replay pins it).
  EXPECT_EQ(hash::fnv1a64(""), 0xCBF29CE484222325ull);
}

TEST(SimdHash, EngineHashUnification) {
  // Differential proof of the hash unification: the engine's partition
  // hash, the default partitioner and hash::partition_of all agree.
  for (std::string_view key :
       {std::string_view{""}, std::string_view{"a"},
        std::string_view{"vertex-12345"}, std::string_view("\x01\xff\x00\x7f", 4)}) {
    EXPECT_EQ(mr::stable_hash(key), hash::stable_hash(key));
    for (int parts : {1, 7, 64}) {
      EXPECT_EQ(mr::default_partitioner()(key, parts),
                hash::partition_of(key, static_cast<uint32_t>(parts)));
    }
  }
}

// -------------------------------------------------------------- zero-copy

TEST(ZeroCopy, PinnedReadSurvivesRemoveAndChurn) {
  dfs::DfsConfig cfg;
  cfg.num_nodes = 2;
  cfg.replication = 1;
  cfg.block_size = 1 << 20;  // single-block file: the zero-copy path
  dfs::FileSystem fs(cfg);
  Bytes payload;
  for (int i = 0; i < 5000; ++i) payload += "record-" + std::to_string(i);
  fs.write_all("spill", payload);

  dfs::FileSystem::PinnedBytes pinned = fs.read_all_pinned("spill");
  ASSERT_NE(pinned.owner, nullptr);
  ASSERT_EQ(pinned.data, payload);

  // Remove the file, then churn the allocator so freed storage would be
  // reused (and the stale view poisoned) if the pin did not hold it.
  fs.remove("spill");
  EXPECT_FALSE(fs.exists("spill"));
  for (int i = 0; i < 50; ++i) {
    fs.write_all("churn-" + std::to_string(i), Bytes(4096, static_cast<char>(i)));
  }
  EXPECT_EQ(pinned.data, payload);
}

TEST(ZeroCopy, PinnedMultiBlockReadIsStable) {
  dfs::DfsConfig cfg;
  cfg.num_nodes = 2;
  cfg.replication = 1;
  cfg.block_size = 256;  // force several blocks: the concatenating path
  dfs::FileSystem fs(cfg);
  Bytes payload;
  dfs::FileWriter w = fs.create("multi");
  for (int i = 0; i < 64; ++i) {
    Bytes chunk(100, static_cast<char>('a' + i % 26));
    w.append(chunk);
    payload += chunk;
  }
  w.close();
  dfs::FileSystem::PinnedBytes pinned = fs.read_all_pinned("multi");
  fs.remove("multi");
  EXPECT_EQ(pinned.data, payload);
}

TEST(ZeroCopy, RecordReaderViewsAliasePinnedBlocks) {
  // The reader's zero-copy path must hand out views without ever growing
  // a refill buffer (buffer_capacity stays 0 for block-aligned files) and
  // the views must stay valid until the next next() call even if the file
  // is removed mid-iteration (the pinned block holds the bytes).
  dfs::DfsConfig cfg;
  cfg.num_nodes = 1;
  cfg.replication = 1;
  cfg.block_size = 1 << 16;
  dfs::FileSystem fs(cfg);
  dfs::RecordWriter w(&fs, "runs");
  for (int i = 0; i < 1000; ++i) {
    w.write("key" + std::to_string(i), std::string(50, 'v'));
  }
  w.close();

  dfs::RecordReader r(&fs, "runs");
  auto first = r.next();
  ASSERT_TRUE(first.has_value());
  fs.remove("runs");  // reader + pins keep the open file's bytes alive
  EXPECT_EQ(first->key, "key0");
  int count = 1;
  while (auto rec = r.next()) {
    EXPECT_EQ(rec->value.size(), 50u);
    ++count;
  }
  EXPECT_EQ(count, 1000);
  // The refill buffer was never grown past SSO: no record bytes were
  // copied into it (the zero-copy path decoded straight from the pins).
  EXPECT_LE(r.buffer_capacity(), Bytes().capacity());
}

TEST(ZeroCopy, BlockReaderBorrowModeNeverReadsStaleChunk) {
  // Borrow-mode contract: a source chunk is only read before the next
  // pull. Feed frames through a reused scratch buffer and poison it after
  // each pull; the decoded payloads must still round-trip.
  std::vector<Bytes> frames;
  std::vector<Bytes> payloads;
  for (int i = 0; i < 20; ++i) {
    Bytes payload(300 + i * 7, static_cast<char>('a' + i));
    Bytes frame;
    codec::append_frame(frame, payload, codec::CodecId::kLz);
    payloads.push_back(std::move(payload));
    frames.push_back(std::move(frame));
  }
  Bytes scratch;       // the chunk the source lends out
  Bytes prev_poison;   // previous chunk, poisoned after the next pull
  size_t next = 0;
  codec::BlockReader reader([&](size_t) -> std::string_view {
    prev_poison.swap(scratch);
    std::fill(prev_poison.begin(), prev_poison.end(), '\xFF');
    if (next == frames.size()) return {};
    scratch = frames[next++];
    return scratch;
  });
  for (size_t i = 0; i < payloads.size(); ++i) {
    Bytes block(reader.next_block());
    ASSERT_EQ(block, payloads[i]) << "frame " << i;
  }
  EXPECT_TRUE(reader.next_block().empty());
}

TEST(ZeroCopy, BlockReaderStagingModeWithPoisonedChunks) {
  // Chunks that split frames at arbitrary points force staging mode; the
  // reader must have copied what it needs before each next pull poisons
  // the previous chunk.
  Bytes wire;
  std::vector<Bytes> payloads;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 30; ++i) {
    Bytes payload(50 + (rng() % 800), static_cast<char>('A' + i % 26));
    codec::append_frame(wire, payload, codec::CodecId::kLz);
    payloads.push_back(std::move(payload));
  }
  for (size_t chunk_size : {size_t{1}, size_t{7}, size_t{97}, size_t{1024}}) {
    Bytes scratch, prev_poison;
    size_t off = 0;
    codec::BlockReader reader([&](size_t) -> std::string_view {
      prev_poison.swap(scratch);
      std::fill(prev_poison.begin(), prev_poison.end(), '\xFF');
      if (off == wire.size()) return {};
      size_t n = std::min(chunk_size, wire.size() - off);
      scratch.assign(wire, off, n);
      off += n;
      return scratch;
    });
    for (size_t i = 0; i < payloads.size(); ++i) {
      Bytes block(reader.next_block());
      ASSERT_EQ(block, payloads[i]) << "chunk=" << chunk_size << " frame=" << i;
    }
    EXPECT_TRUE(reader.next_block().empty());
  }
}

}  // namespace
}  // namespace mrflow
