// Rack topology & speculative execution differential tests.
//
// The contract (mapreduce/cluster.h): topology and speculation change
// *placement, byte accounting, and simulated seconds* -- never results.
// Every test here runs the same workload under a flat 1-rack cluster and
// under rack-aware / speculative configurations and asserts bit-identical
// outcomes:
//
//   - FFMR: flow value, round count, per-pair assignment, and the raw
//     (decoded) per-round byte/record counters are invariant across
//     1 rack / N racks / aggregation on / aggregation off / speculation.
//   - MR engine: reduce output partitions are byte-identical with per-rack
//     map-output aggregation on vs. off, including duplicate keys spread
//     across maps (the origin-tag tie-break must preserve run order).
//   - Chaos slice: rack-aware + speculative clusters under straggler and
//     node-crash faults still match the fault-free flat baseline and
//     carry a validating min-cut certificate.
//
// Accounting invariants: intra_rack + inter_rack == remote on every round;
// one rack => inter_rack == 0; speculative_launched == won + wasted and
// all three are zero with speculation off.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dfs/record_io.h"
#include "ffmr/solver.h"
#include "flow/certify.h"
#include "graph/generators.h"
#include "mapreduce/driver.h"
#include "mapreduce/typed.h"

namespace mrflow::ffmr {
namespace {

struct Workload {
  graph::Graph g;
  graph::VertexId s = 0, t = 0;
};

Workload make_workload(uint64_t seed) {
  Workload wl;
  wl.g = graph::watts_strogatz(120, 6, 0.2, seed);
  wl.s = 3;
  wl.t = 71;
  return wl;
}

struct TopoConfig {
  int racks = 1;
  bool aggregation = true;
  bool speculation = false;
  bool straggler = false;
  bool node_crash = false;
  bool spill = false;
};

mr::ClusterConfig cluster_config(const TopoConfig& tc) {
  mr::ClusterConfig config;
  config.num_slave_nodes = 6;
  config.map_slots_per_node = 2;
  config.reduce_slots_per_node = 2;
  config.dfs_block_size = 8 << 10;
  config.num_racks = tc.racks;
  if (tc.racks > 1) config.cost.inter_rack_mbps = config.cost.network_mbps / 4;
  config.speculative_execution = tc.speculation;
  config.max_task_attempts = 8;
  if (tc.straggler) config.fault.straggler_probability = 0.3;
  if (tc.node_crash) config.fault.node_crash_probability = 0.08;
  config.fault.seed = 7;
  return config;
}

FfmrResult run_ffmr(const Workload& wl, const TopoConfig& tc) {
  mr::Cluster cluster(cluster_config(tc));
  FfmrOptions o;
  o.variant = Variant::FF5;
  o.async_augmenter = false;  // deterministic acceptance order
  o.wire = WireChoice::kOn;   // aggregation re-compacts, so it needs a codec
  o.rack_aggregation = tc.aggregation;
  o.spill_map_outputs = tc.spill;
  o.num_reduce_tasks = 8;
  FfmrResult r = solve_max_flow(cluster, wl.g, wl.s, wl.t, o);
  EXPECT_TRUE(r.converged);
  return r;
}

// The raw (decoded) counters that topology must never change, per round.
void expect_rounds_identical(const FfmrResult& got, const FfmrResult& want) {
  ASSERT_EQ(got.rounds_info.size(), want.rounds_info.size());
  for (size_t i = 0; i < want.rounds_info.size(); ++i) {
    SCOPED_TRACE("round " + std::to_string(i));
    const mr::JobStats& a = got.rounds_info[i].stats;
    const mr::JobStats& b = want.rounds_info[i].stats;
    EXPECT_EQ(a.num_map_tasks, b.num_map_tasks);
    EXPECT_EQ(a.map_output_records, b.map_output_records);
    EXPECT_EQ(a.reduce_output_records, b.reduce_output_records);
    EXPECT_EQ(a.map_output_bytes, b.map_output_bytes);
    EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);
    EXPECT_EQ(a.output_bytes, b.output_bytes);
  }
}

void expect_rack_invariants(const FfmrResult& r, int racks) {
  for (const RoundInfo& info : r.rounds_info) {
    SCOPED_TRACE("round " + std::to_string(info.round));
    const mr::JobStats& s = info.stats;
    EXPECT_EQ(s.shuffle_bytes_intra_rack + s.shuffle_bytes_inter_rack,
              s.shuffle_bytes_remote);
    EXPECT_EQ(s.shuffle_bytes_intra_rack_wire + s.shuffle_bytes_inter_rack_wire,
              s.shuffle_bytes_remote_wire);
    if (racks == 1) {
      EXPECT_EQ(s.shuffle_bytes_inter_rack, 0u);
      EXPECT_EQ(s.shuffle_bytes_inter_rack_wire, 0u);
    }
  }
}

int64_t total(const FfmrResult& r, int64_t mr::JobStats::*field) {
  int64_t sum = 0;
  for (const RoundInfo& info : r.rounds_info) sum += info.stats.*field;
  return sum;
}

uint64_t total_u(const FfmrResult& r, uint64_t mr::JobStats::*field) {
  uint64_t sum = 0;
  for (const RoundInfo& info : r.rounds_info) sum += info.stats.*field;
  return sum;
}

TEST(RackTopology, RackOfPartitionsNodesContiguously) {
  mr::ClusterConfig config;
  config.num_slave_nodes = 10;
  config.num_racks = 3;  // ceil(10/3) = 4 nodes per rack
  mr::Cluster cluster(config);
  EXPECT_EQ(cluster.num_racks(), 3);
  EXPECT_EQ(cluster.rack_of(0), 0);
  EXPECT_EQ(cluster.rack_of(3), 0);
  EXPECT_EQ(cluster.rack_of(4), 1);
  EXPECT_EQ(cluster.rack_of(7), 1);
  EXPECT_EQ(cluster.rack_of(8), 2);
  EXPECT_EQ(cluster.rack_of(9), 2);
  // Monotone and non-skipping across the node range.
  for (int n = 1; n < 10; ++n) {
    int d = cluster.rack_of(n) - cluster.rack_of(n - 1);
    EXPECT_TRUE(d == 0 || d == 1);
  }
}

TEST(RackTopology, MoreRacksThanNodesClamps) {
  mr::ClusterConfig config;
  config.num_slave_nodes = 2;
  config.num_racks = 8;
  mr::Cluster cluster(config);
  EXPECT_EQ(cluster.num_racks(), 2);
  EXPECT_EQ(cluster.rack_of(0), 0);
  EXPECT_EQ(cluster.rack_of(1), 1);
}

TEST(RackTopology, FfmrResultsInvariantAcrossTopology) {
  Workload wl = make_workload(11);
  FfmrResult flat = run_ffmr(wl, {.racks = 1});
  expect_rack_invariants(flat, 1);

  for (const TopoConfig& tc :
       {TopoConfig{.racks = 2, .aggregation = true},
        TopoConfig{.racks = 2, .aggregation = false},
        TopoConfig{.racks = 3, .aggregation = true}}) {
    SCOPED_TRACE("racks=" + std::to_string(tc.racks) +
                 " agg=" + std::to_string(tc.aggregation));
    FfmrResult r = run_ffmr(wl, tc);
    EXPECT_EQ(r.max_flow, flat.max_flow);
    EXPECT_EQ(r.rounds, flat.rounds);
    EXPECT_EQ(r.assignment.pair_flow, flat.assignment.pair_flow);
    expect_rounds_identical(r, flat);
    expect_rack_invariants(r, tc.racks);
  }
}

TEST(RackTopology, AggregationReducesInterRackWireBytes) {
  Workload wl = make_workload(11);
  FfmrResult noagg = run_ffmr(wl, {.racks = 2, .aggregation = false});
  FfmrResult agg = run_ffmr(wl, {.racks = 2, .aggregation = true});
  // The raw split (a property of placement, which aggregation must not
  // disturb) is identical; only the wire bytes crossing the core shrink.
  EXPECT_EQ(total_u(agg, &mr::JobStats::shuffle_bytes_inter_rack),
            total_u(noagg, &mr::JobStats::shuffle_bytes_inter_rack));
  EXPECT_LT(total_u(agg, &mr::JobStats::shuffle_bytes_inter_rack_wire),
            total_u(noagg, &mr::JobStats::shuffle_bytes_inter_rack_wire));
}

TEST(RackTopology, SpeculationChangesOnlySimAndCounters) {
  Workload wl = make_workload(13);
  TopoConfig strag{.racks = 2, .straggler = true};
  TopoConfig spec{.racks = 2, .speculation = true, .straggler = true};
  FfmrResult off = run_ffmr(wl, strag);
  FfmrResult on = run_ffmr(wl, spec);

  EXPECT_EQ(on.max_flow, off.max_flow);
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.assignment.pair_flow, off.assignment.pair_flow);
  expect_rounds_identical(on, off);

  EXPECT_EQ(total(off, &mr::JobStats::speculative_launched), 0);
  const int64_t launched = total(on, &mr::JobStats::speculative_launched);
  const int64_t won = total(on, &mr::JobStats::speculative_won);
  const int64_t wasted = total(on, &mr::JobStats::speculative_wasted);
  EXPECT_GT(launched, 0);
  EXPECT_EQ(launched, won + wasted);
  // Backups can only cut a straggler's cost-model time, never add to it.
  EXPECT_LE(on.totals.sim_seconds, off.totals.sim_seconds);
}

// Chaos slice: everything the topology layer adds, at once, under faults.
// Rack-aware placement + per-rack aggregation + speculation + spilled map
// outputs, with stragglers and node crashes injected, must still match
// the fault-free flat baseline bit-for-bit and certify as a max flow.
TEST(RackTopology, ChaosReplayRackAwareSpeculative) {
  Workload wl = make_workload(17);
  FfmrResult base = run_ffmr(wl, {.racks = 1});
  TopoConfig chaos{.racks = 3,
                   .aggregation = true,
                   .speculation = true,
                   .straggler = true,
                   .node_crash = true,
                   .spill = true};
  FfmrResult r = run_ffmr(wl, chaos);

  EXPECT_EQ(r.max_flow, base.max_flow);
  EXPECT_EQ(r.rounds, base.rounds);
  EXPECT_EQ(r.assignment.pair_flow, base.assignment.pair_flow);
  expect_rack_invariants(r, 3);

  flow::Certificate cert =
      flow::certify_max_flow(wl.g, wl.s, wl.t, r.assignment);
  EXPECT_TRUE(cert.valid()) << cert.summary();
}

// Engine-level byte identity: word count with heavy key duplication across
// maps. Per-rack aggregation merges each remote rack's runs into one
// origin-tagged run; the tag tie-break must reproduce the exact per-run
// arrival order, so the reduce output partitions -- read back raw -- are
// byte-identical with aggregation on and off.
TEST(RackTopology, EngineOutputBytesIdenticalUnderAggregation) {
  auto run = [](bool aggregation) {
    mr::ClusterConfig config;
    config.num_slave_nodes = 6;
    config.num_racks = 2;
    config.dfs_block_size = 1 << 10;  // many blocks => many maps
    mr::Cluster cluster(config);

    dfs::RecordWriter in(&cluster.fs(), "in");
    for (int i = 0; i < 400; ++i) {
      in.write(std::to_string(i), "k" + std::to_string(i % 7));
    }
    in.close();

    mr::JobSpec spec;
    spec.name = "agg-ident";
    spec.inputs = {"in"};
    spec.output_prefix = "out";
    spec.num_reduce_tasks = 4;
    spec.wire.codec = codec::CodecId::kLz;  // aggregation requires a codec
    spec.rack_aggregation = aggregation;
    spec.mapper = mr::lambda_mapper(
        [](std::string_view, std::string_view value, mr::MapContext& ctx) {
          ctx.emit(value, "1");
        });
    spec.reducer = mr::lambda_reducer([](std::string_view key,
                                         const mr::Values& values,
                                         mr::ReduceContext& ctx) {
      ctx.emit(key, std::to_string(values.size()));
    });
    mr::JobStats stats = mr::run_job(cluster, spec);

    std::vector<serde::Bytes> parts;
    for (int r = 0; r < stats.num_reduce_tasks; ++r) {
      parts.push_back(cluster.fs().read_all(mr::partition_file("out", r)));
    }
    return parts;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace mrflow::ffmr
