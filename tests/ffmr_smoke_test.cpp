// End-to-end smoke tests: every FFMR variant must find the exact max-flow
// (checked against Dinic and the min-cut certificate) on small graphs.
#include <gtest/gtest.h>

#include "ffmr/solver.h"
#include "flow/max_flow.h"
#include "flow/validate.h"
#include "graph/generators.h"

namespace mrflow {
namespace {

mr::Cluster make_test_cluster() {
  mr::ClusterConfig config;
  config.num_slave_nodes = 3;
  config.map_slots_per_node = 2;
  config.reduce_slots_per_node = 2;
  config.dfs_block_size = 64 << 10;
  return mr::Cluster(config);
}

ffmr::FfmrOptions options_for(ffmr::Variant v) {
  ffmr::FfmrOptions o;
  o.variant = v;
  o.async_augmenter = false;  // deterministic in tests
  return o;
}

void expect_exact(const graph::Graph& g, graph::VertexId s, graph::VertexId t,
                  ffmr::Variant variant) {
  auto expected = flow::max_flow_dinic(g, s, t);
  mr::Cluster cluster = make_test_cluster();
  auto result = ffmr::solve_max_flow(cluster, g, s, t, options_for(variant));
  EXPECT_TRUE(result.converged) << ffmr::variant_name(variant);
  EXPECT_EQ(result.max_flow, expected.value) << ffmr::variant_name(variant);
  auto report = flow::validate_max_flow(g, s, t, result.assignment);
  EXPECT_TRUE(report.ok) << ffmr::variant_name(variant) << ": "
                         << report.summary();
}

// The classic CLRS flow network (max flow 23).
graph::Graph clrs_graph() {
  graph::Graph g(6);
  g.add_edge(0, 1, 16, 0);
  g.add_edge(0, 2, 13, 0);
  g.add_edge(1, 2, 10, 4);
  g.add_edge(1, 3, 12, 0);
  g.add_edge(2, 3, 0, 9);
  g.add_edge(2, 4, 14, 0);
  g.add_edge(3, 4, 0, 7);
  g.add_edge(3, 5, 20, 0);
  g.add_edge(4, 5, 4, 0);
  g.finalize();
  return g;
}

TEST(FfmrSmoke, TinyPath) {
  graph::Graph g(3);
  g.add_edge(0, 1, 5, 5);
  g.add_edge(1, 2, 3, 3);
  g.finalize();
  for (auto v : {ffmr::Variant::FF1, ffmr::Variant::FF5}) {
    expect_exact(g, 0, 2, v);
  }
}

TEST(FfmrSmoke, ClrsAllVariants) {
  graph::Graph g = clrs_graph();
  for (auto v : {ffmr::Variant::FF1, ffmr::Variant::FF2, ffmr::Variant::FF3,
                 ffmr::Variant::FF4, ffmr::Variant::FF5}) {
    expect_exact(g, 0, 5, v);
  }
}

TEST(FfmrSmoke, SmallWorldUnitCaps) {
  graph::Graph g = graph::watts_strogatz(200, 6, 0.2, /*seed=*/42);
  expect_exact(g, 0, 100, ffmr::Variant::FF5);
  expect_exact(g, 0, 100, ffmr::Variant::FF1);
}

TEST(FfmrSmoke, SuperTerminals) {
  auto problem = graph::attach_super_terminals(
      graph::barabasi_albert(300, 3, /*seed=*/7), /*w=*/4, /*min_degree=*/4,
      /*seed=*/9);
  expect_exact(problem.graph, problem.source, problem.sink,
               ffmr::Variant::FF5);
}

TEST(FfmrSmoke, DisconnectedIsZero) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(2, 3, 1, 1);
  g.finalize();
  mr::Cluster cluster = make_test_cluster();
  auto result =
      ffmr::solve_max_flow(cluster, g, 0, 3, options_for(ffmr::Variant::FF5));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.max_flow, 0);
}

}  // namespace
}  // namespace mrflow
