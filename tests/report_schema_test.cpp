// Golden-schema tests for the repo's machine-readable outputs: the
// per-round JSONL report (RoundReportWriter + the solver's enriched
// fields, exemplified by round_report.example.jsonl) and the BENCH_*.json
// documents emitted through bench::JsonWriter. The committed examples are
// documentation -- EXPERIMENTS.md tells readers to parse them -- so a field
// rename or addition must show up here as a red test until the examples
// are regenerated (see the header comment in round_report.example.jsonl's
// generator command below).
//
// Schema = the set of top-level keys with their JSON value kinds. Values
// are free to change run to run; keys and kinds are the contract.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/profile.h"
#include "ffmr/solver.h"
#include "ffpr/solver.h"
#include "graph/generators.h"
#include "service/flow_service.h"

#ifndef MRFLOW_SOURCE_DIR
#error "tests/CMakeLists.txt must define MRFLOW_SOURCE_DIR"
#endif

namespace mrflow {
namespace {

// ------------------------------------------------- minimal JSON scanner
//
// Just enough JSON to extract {key -> value kind} from an object and the
// element ranges of an array. Malformed input fails the calling test via
// ADD_FAILURE rather than crashing.

enum class Kind { kNumber, kString, kBool, kNull, kObject, kArray, kError };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kBool: return "bool";
    case Kind::kNull: return "null";
    case Kind::kObject: return "object";
    case Kind::kArray: return "array";
    default: return "error";
  }
}

using Schema = std::map<std::string, Kind>;

size_t skip_ws(const std::string& s, size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

// Returns one past the closing quote, or npos on error.
size_t skip_string(const std::string& s, size_t pos) {
  if (pos >= s.size() || s[pos] != '"') return std::string::npos;
  for (++pos; pos < s.size(); ++pos) {
    if (s[pos] == '\\') {
      ++pos;
    } else if (s[pos] == '"') {
      return pos + 1;
    }
  }
  return std::string::npos;
}

// Returns one past the end of the value starting at pos; sets `kind`.
size_t skip_value(const std::string& s, size_t pos, Kind& kind) {
  pos = skip_ws(s, pos);
  if (pos >= s.size()) {
    kind = Kind::kError;
    return std::string::npos;
  }
  char c = s[pos];
  if (c == '"') {
    kind = Kind::kString;
    return skip_string(s, pos);
  }
  if (c == '{' || c == '[') {
    kind = c == '{' ? Kind::kObject : Kind::kArray;
    int depth = 0;
    for (; pos < s.size(); ++pos) {
      if (s[pos] == '"') {
        pos = skip_string(s, pos);
        if (pos == std::string::npos) {
          kind = Kind::kError;
          return std::string::npos;
        }
        --pos;  // loop increment compensates
      } else if (s[pos] == '{' || s[pos] == '[') {
        ++depth;
      } else if (s[pos] == '}' || s[pos] == ']') {
        if (--depth == 0) return pos + 1;
      }
    }
    kind = Kind::kError;
    return std::string::npos;
  }
  if (s.compare(pos, 4, "true") == 0) {
    kind = Kind::kBool;
    return pos + 4;
  }
  if (s.compare(pos, 5, "false") == 0) {
    kind = Kind::kBool;
    return pos + 5;
  }
  if (s.compare(pos, 4, "null") == 0) {
    kind = Kind::kNull;
    return pos + 4;
  }
  kind = Kind::kNumber;
  while (pos < s.size() && (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                            s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                            s[pos] == 'e' || s[pos] == 'E')) {
    ++pos;
  }
  return pos;
}

// Top-level keys and kinds of the object starting at `pos` in `s`.
Schema object_schema(const std::string& s, size_t pos = 0) {
  Schema schema;
  pos = skip_ws(s, pos);
  if (pos >= s.size() || s[pos] != '{') {
    ADD_FAILURE() << "not a JSON object: " << s.substr(0, 80);
    return schema;
  }
  pos = skip_ws(s, pos + 1);
  if (pos < s.size() && s[pos] == '}') return schema;
  while (pos < s.size()) {
    size_t key_end = skip_string(s, pos);
    if (key_end == std::string::npos) break;
    std::string key = s.substr(pos + 1, key_end - pos - 2);
    pos = skip_ws(s, key_end);
    if (pos >= s.size() || s[pos] != ':') break;
    Kind kind;
    pos = skip_value(s, pos + 1, kind);
    if (pos == std::string::npos || kind == Kind::kError) break;
    schema[key] = kind;
    pos = skip_ws(s, pos);
    if (pos < s.size() && s[pos] == ',') {
      pos = skip_ws(s, pos + 1);
      continue;
    }
    if (pos < s.size() && s[pos] == '}') return schema;
    break;
  }
  ADD_FAILURE() << "malformed JSON object: " << s.substr(0, 120);
  return schema;
}

// The element substrings of the array valued at `key` in `doc`.
std::vector<std::string> array_elements(const std::string& doc,
                                        const std::string& key) {
  std::vector<std::string> out;
  std::string needle = "\"" + key + "\":";
  size_t pos = doc.find(needle);
  if (pos == std::string::npos) {
    ADD_FAILURE() << "no \"" << key << "\" array in document";
    return out;
  }
  pos = skip_ws(doc, pos + needle.size());
  if (pos >= doc.size() || doc[pos] != '[') {
    ADD_FAILURE() << "\"" << key << "\" is not an array";
    return out;
  }
  pos = skip_ws(doc, pos + 1);
  while (pos < doc.size() && doc[pos] != ']') {
    Kind kind;
    size_t end = skip_value(doc, pos, kind);
    if (end == std::string::npos) {
      ADD_FAILURE() << "malformed array element";
      return out;
    }
    out.push_back(doc.substr(pos, end - pos));
    pos = skip_ws(doc, end);
    if (pos < doc.size() && doc[pos] == ',') pos = skip_ws(doc, pos + 1);
  }
  return out;
}

std::string diff_schemas(const Schema& a, const Schema& b) {
  std::string out;
  for (const auto& [key, kind] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      out += "  only in first: " + key + " (" + kind_name(kind) + ")\n";
    } else if (it->second != kind) {
      out += "  kind mismatch: " + key + " (" + kind_name(kind) + " vs " +
             kind_name(it->second) + ")\n";
    }
  }
  for (const auto& [key, kind] : b) {
    if (!a.count(key)) {
      out += "  only in second: " + key + " (" + kind_name(kind) + ")\n";
    }
  }
  return out;
}

std::string source_path(const std::string& rel) {
  return std::string(MRFLOW_SOURCE_DIR) + "/" + rel;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

// ------------------------------------------------------ round report

// A live round report from a small deterministic solve. The same recipe
// (bigger graph) regenerates the committed example:
//   maxflow_cli <edges> --algo=ff5 --round_report=round_report.example.jsonl
std::vector<std::string> live_round_report() {
  graph::Graph g = graph::watts_strogatz(80, 4, 0.25, 3);
  mr::ClusterConfig config;
  config.num_slave_nodes = 3;
  config.dfs_block_size = 32 << 10;
  mr::Cluster cluster(config);
  ffmr::FfmrOptions o;
  o.variant = ffmr::Variant::FF5;
  o.async_augmenter = false;
  // Unique per process: ctest runs each TEST as its own process, possibly
  // in parallel, and two writers on one path would interleave lines.
  std::string path = ::testing::TempDir() + "/schema_round_report." +
                     std::to_string(::getpid()) + ".jsonl";
  o.round_report = path;
  ffmr::solve_max_flow(cluster, g, 0, 40, o);
  auto lines = read_lines(path);
  std::remove(path.c_str());
  return lines;
}

TEST(RoundReportSchema, LiveLinesMatchCommittedExample) {
  auto live = live_round_report();
  auto example = read_lines(source_path("round_report.example.jsonl"));
  ASSERT_GE(live.size(), 2u);
  ASSERT_GE(example.size(), 2u);

  Schema golden = object_schema(example[0]);
  ASSERT_FALSE(golden.empty());
  // Every example line agrees with itself (the writer emits a fixed field
  // list every round), and every live line matches the example: a renamed
  // or added field fails here until the example is regenerated.
  for (const auto& line : example) {
    EXPECT_EQ(diff_schemas(golden, object_schema(line)), "") << line;
  }
  for (const auto& line : live) {
    EXPECT_EQ(diff_schemas(golden, object_schema(line)), "") << line;
  }
}

TEST(RoundReportSchema, RequiredFieldsPresentWithKinds) {
  // The spine of the schema, asserted explicitly so the golden comparison
  // cannot silently rot into comparing two empty sets.
  auto live = live_round_report();
  ASSERT_FALSE(live.empty());
  Schema schema = object_schema(live[0]);
  const std::pair<const char*, Kind> kRequired[] = {
      {"round", Kind::kNumber},
      {"job", Kind::kString},
      {"backend", Kind::kString},
      {"map_tasks", Kind::kNumber},
      {"reduce_tasks", Kind::kNumber},
      {"map_output_records", Kind::kNumber},
      {"reduce_output_records", Kind::kNumber},
      {"shuffle_bytes", Kind::kNumber},
      {"shuffle_bytes_intra_rack", Kind::kNumber},
      {"shuffle_bytes_inter_rack", Kind::kNumber},
      {"schimmy_bytes", Kind::kNumber},
      {"spill_bytes", Kind::kNumber},
      {"output_bytes", Kind::kNumber},
      {"shuffle_bytes_wire", Kind::kNumber},
      {"shuffle_bytes_intra_rack_wire", Kind::kNumber},
      {"shuffle_bytes_inter_rack_wire", Kind::kNumber},
      {"schimmy_bytes_wire", Kind::kNumber},
      {"spill_bytes_wire", Kind::kNumber},
      {"output_bytes_wire", Kind::kNumber},
      {"task_retries", Kind::kNumber},
      {"speculative_launched", Kind::kNumber},
      {"speculative_won", Kind::kNumber},
      {"speculative_wasted", Kind::kNumber},
      {"sim_seconds", Kind::kNumber},
      {"wall_seconds", Kind::kNumber},
      {"source_moves", Kind::kNumber},
      {"sink_moves", Kind::kNumber},
      {"paths_offered", Kind::kNumber},
      {"paths_accepted", Kind::kNumber},
      {"paths_rejected", Kind::kNumber},
      {"delta_flow", Kind::kNumber},
      {"total_flow", Kind::kNumber},
      {"max_queue", Kind::kNumber},
      {"restart", Kind::kBool},
      {"critical_path_ms", Kind::kNumber},
      {"top_blame", Kind::kString},
      {"trace_spans_dropped", Kind::kNumber},
      {"counters", Kind::kObject},
  };
  for (const auto& [key, kind] : kRequired) {
    auto it = schema.find(key);
    ASSERT_NE(it, schema.end()) << "missing field: " << key;
    EXPECT_EQ(it->second, kind) << key << " is " << kind_name(it->second);
  }
}

// The FF-PR solver shares the RoundReportWriter spine but appends its own
// wave fields (backend/phase plus the push-relabel counters) in place of
// the FFMR path fields. Pin that enrichment here: the two backends'
// reports are distinguishable by "backend" and each carries its full
// field list on every line.
std::vector<std::string> live_ffpr_round_report() {
  auto p = graph::lattice_flow_problem(3, 12, 1);
  mr::ClusterConfig config;
  config.num_slave_nodes = 3;
  config.dfs_block_size = 32 << 10;
  mr::Cluster cluster(config);
  ffpr::FfprOptions o;
  std::string path = ::testing::TempDir() + "/schema_ffpr_round_report." +
                     std::to_string(::getpid()) + ".jsonl";
  o.round_report = path;
  ffpr::solve_max_flow(cluster, p.graph, p.source, p.sink, o);
  auto lines = read_lines(path);
  std::remove(path.c_str());
  return lines;
}

TEST(RoundReportSchema, FfprLinesCarryWaveFields) {
  auto live = live_ffpr_round_report();
  // Round #0 + initial relabel phase + push waves: plenty of lines, and
  // both phase kinds present.
  ASSERT_GE(live.size(), 4u);
  Schema golden = object_schema(live[0]);
  ASSERT_FALSE(golden.empty());
  for (const auto& line : live) {
    EXPECT_EQ(diff_schemas(golden, object_schema(line)), "") << line;
  }
  const std::pair<const char*, Kind> kRequired[] = {
      {"round", Kind::kNumber},
      {"job", Kind::kString},
      {"backend", Kind::kString},
      {"phase", Kind::kString},
      {"requests", Kind::kNumber},
      {"pushes", Kind::kNumber},
      {"refused", Kind::kNumber},
      {"lifts", Kind::kNumber},
      {"active", Kind::kNumber},
      {"height_updates", Kind::kNumber},
      {"excess_drained", Kind::kNumber},
      {"delta_flow", Kind::kNumber},
      {"total_flow", Kind::kNumber},
      {"relabel_rounds", Kind::kNumber},
      {"shuffle_bytes", Kind::kNumber},
      {"sim_seconds", Kind::kNumber},
  };
  for (const auto& [key, kind] : kRequired) {
    auto it = golden.find(key);
    ASSERT_NE(it, golden.end()) << "missing field: " << key;
    EXPECT_EQ(it->second, kind) << key << " is " << kind_name(it->second);
  }
  // The backend tag is the discriminator the portfolio docs promise.
  EXPECT_NE(live[0].find("\"backend\":\"ffpr\""), std::string::npos);
  bool saw_push = false, saw_relabel = false;
  for (const auto& line : live) {
    if (line.find("\"phase\":\"push\"") != std::string::npos) saw_push = true;
    if (line.find("\"phase\":\"relabel") != std::string::npos) {
      saw_relabel = true;
    }
  }
  EXPECT_TRUE(saw_push);
  EXPECT_TRUE(saw_relabel);
}

// ----------------------------------------------------- profile report

// A live ProfileReport from the same small deterministic solve the round
// report uses. The committed example is regenerated with:
//   maxflow_cli <edges> --algo=ff5 --profile_out=profile.example.json
std::string live_profile_report() {
  auto& collector = common::ProfileCollector::global();
  collector.set_enabled(true);
  collector.clear();
  graph::Graph g = graph::watts_strogatz(80, 4, 0.25, 3);
  mr::ClusterConfig config;
  config.num_slave_nodes = 3;
  config.dfs_block_size = 32 << 10;
  mr::Cluster cluster(config);
  ffmr::FfmrOptions o;
  o.variant = ffmr::Variant::FF5;
  o.async_augmenter = false;
  ffmr::solve_max_flow(cluster, g, 0, 40, o);
  std::string doc = collector.report_json();
  collector.set_enabled(false);
  collector.clear();
  return doc;
}

TEST(ProfileReportSchema, LiveReportMatchesCommittedExample) {
  std::string live = live_profile_report();
  std::string example = read_file(source_path("profile.example.json"));
  ASSERT_FALSE(example.empty());

  // Top level: profile_version / jobs / totals, same kinds both sides.
  Schema live_top = object_schema(live);
  Schema example_top = object_schema(example);
  EXPECT_EQ(diff_schemas(live_top, example_top), "");
  EXPECT_EQ(live_top["profile_version"], Kind::kNumber);
  EXPECT_EQ(live_top["jobs"], Kind::kArray);
  EXPECT_EQ(live_top["totals"], Kind::kObject);

  // Every job row (live and committed) carries one schema. The top-level
  // "jobs" array precedes totals' "jobs" count in the document, so the
  // array scanner finds the right one.
  auto live_rows = array_elements(live, "jobs");
  auto example_rows = array_elements(example, "jobs");
  ASSERT_FALSE(live_rows.empty());
  ASSERT_FALSE(example_rows.empty());
  Schema row0 = object_schema(live_rows[0]);
  for (const auto& row : live_rows) {
    EXPECT_EQ(diff_schemas(row0, object_schema(row)), "");
  }
  for (const auto& row : example_rows) {
    EXPECT_EQ(diff_schemas(row0, object_schema(row)), "") << row;
  }

  // The spine of a job row, asserted explicitly.
  EXPECT_EQ(row0["job"], Kind::kString);
  EXPECT_EQ(row0["top_blame"], Kind::kString);
  EXPECT_EQ(row0["blame"], Kind::kObject);
  EXPECT_EQ(row0["critical_tasks"], Kind::kArray);
  for (const char* key :
       {"maps", "reduces", "dag_nodes", "shuffle_bytes", "shuffle_bytes_wire",
        "dropped_spans", "sim_s", "wall_s", "blame_sum_s", "critical_path_ms",
        "dag_span_ms", "critical_path_frac", "zero_slack_tasks"}) {
    EXPECT_EQ(row0[key], Kind::kNumber) << key;
  }

  // Blame categories are the stable enum-order key set on both sides.
  Schema live_blame = object_schema(
      live_rows[0], live_rows[0].find("\"blame\":") + sizeof("\"blame\":") - 1);
  for (const char* key :
       {"scheduler_idle_s", "map_compute_s", "shuffle_intra_wire_s",
        "shuffle_inter_wire_s", "codec_s", "merge_s", "reduce_compute_s",
        "augmenter_rpc_s", "straggler_wait_s"}) {
    EXPECT_EQ(live_blame[key], Kind::kNumber) << key;
  }

  // Critical-task entries are {task, ms}.
  auto crit = array_elements(live_rows[0], "critical_tasks");
  ASSERT_FALSE(crit.empty());
  Schema crit0 = object_schema(crit[0]);
  EXPECT_EQ(crit0["task"], Kind::kString);
  EXPECT_EQ(crit0["ms"], Kind::kNumber);
}

// --------------------------------------------- service round report

// A live FlowService round report covering both line shapes the service
// emits: query lines (op="query" with the answer provenance) and update
// lines (op="insert"/"delete"/"cap" with the invalidation outcome).
std::vector<std::string> live_service_report() {
  graph::Graph g = graph::watts_strogatz(60, 4, 0.25, 5);
  g.finalize();
  std::string path = ::testing::TempDir() + "/schema_service_report." +
                     std::to_string(::getpid()) + ".jsonl";
  {
    service::ServiceOptions opt;
    opt.backend = service::Backend::kDinic;
    opt.round_report = path;
    service::FlowService svc(nullptr, g, opt);
    svc.query(0, 30);
    svc.query(0, 30);  // cache hit: provenance still reported
    svc.insert_edge(1, 30, 3, 3);
    svc.set_capacity(1, 30, 2, 2);
    svc.delete_edge(1, 30);
    svc.query(0, 30);
  }
  auto lines = read_lines(path);
  std::remove(path.c_str());
  return lines;
}

TEST(ServiceReportSchema, QueryAndUpdateLinesCarryTheirFields) {
  auto lines = live_service_report();
  ASSERT_EQ(lines.size(), 6u);

  const std::pair<const char*, Kind> kQueryRequired[] = {
      {"round", Kind::kNumber},
      {"op", Kind::kString},
      {"s", Kind::kNumber},
      {"t", Kind::kNumber},
      {"answer", Kind::kString},
      {"backend", Kind::kString},
      {"value", Kind::kNumber},
      {"solver_rounds", Kind::kNumber},
      {"query_wall_seconds", Kind::kNumber},
      {"certified", Kind::kBool},
      {"epoch", Kind::kNumber},
      {"warm_hits", Kind::kNumber},
      {"cache_hits", Kind::kNumber},
      {"queries_batched", Kind::kNumber},
      {"repair_rounds", Kind::kNumber},
      {"cold_solves", Kind::kNumber},
  };
  const std::pair<const char*, Kind> kUpdateRequired[] = {
      {"round", Kind::kNumber},
      {"op", Kind::kString},
      {"u", Kind::kNumber},
      {"v", Kind::kNumber},
      {"epoch", Kind::kNumber},
      {"invalidated", Kind::kBool},
      {"cache_invalidations", Kind::kNumber},
  };

  // Lines 0, 1, 5 are queries; 2, 3, 4 are the insert/cap/delete.
  std::vector<Schema> schemas;
  for (const auto& line : lines) schemas.push_back(object_schema(line));
  for (size_t i : {size_t{0}, size_t{1}, size_t{5}}) {
    for (const auto& [key, kind] : kQueryRequired) {
      auto it = schemas[i].find(key);
      ASSERT_NE(it, schemas[i].end())
          << "query line " << i << " missing field: " << key;
      EXPECT_EQ(it->second, kind) << key;
    }
  }
  for (size_t i : {size_t{2}, size_t{3}, size_t{4}}) {
    for (const auto& [key, kind] : kUpdateRequired) {
      auto it = schemas[i].find(key);
      ASSERT_NE(it, schemas[i].end())
          << "update line " << i << " missing field: " << key;
      EXPECT_EQ(it->second, kind) << key;
    }
  }
  // Within a shape, every line carries the identical field list.
  EXPECT_EQ(diff_schemas(schemas[0], schemas[1]), "");
  EXPECT_EQ(diff_schemas(schemas[0], schemas[5]), "");
  EXPECT_EQ(diff_schemas(schemas[2], schemas[3]), "");
  EXPECT_EQ(diff_schemas(schemas[2], schemas[4]), "");
}

TEST(BenchJsonSchema, CommittedServiceDocWellFormed) {
  std::string doc = read_file(source_path("BENCH_service.json"));
  ASSERT_FALSE(doc.empty());
  Schema top = object_schema(doc);
  const std::pair<const char*, Kind> kRequired[] = {
      {"bench", Kind::kString},          {"vertices", Kind::kNumber},
      {"ops", Kind::kNumber},            {"queries", Kind::kNumber},
      {"updates", Kind::kNumber},        {"variant", Kind::kNumber},
      {"flow_value_sum", Kind::kNumber}, {"values_match", Kind::kBool},
      {"answers", Kind::kObject},        {"counters", Kind::kObject},
      {"cold_baseline", Kind::kObject},  {"service", Kind::kObject},
      {"speedup_ratio", Kind::kNumber},
  };
  for (const auto& [key, kind] : kRequired) {
    auto it = top.find(key);
    ASSERT_NE(it, top.end()) << "missing field: " << key;
    EXPECT_EQ(it->second, kind) << key << " is " << kind_name(it->second);
  }
}

// --------------------------------------------------------- bench JSON

TEST(BenchJsonSchema, CommittedShuffleEngineDocWellFormed) {
  std::string doc = read_file(source_path("BENCH_shuffle_engine.json"));
  ASSERT_FALSE(doc.empty());
  Schema top = object_schema(doc);
  const std::pair<const char*, Kind> kRequired[] = {
      {"bench", Kind::kString},   {"graph", Kind::kString},
      {"scale", Kind::kNumber},   {"map_tasks", Kind::kNumber},
      {"records", Kind::kNumber}, {"phases", Kind::kObject},
      {"engine", Kind::kArray},
  };
  for (const auto& [key, kind] : kRequired) {
    auto it = top.find(key);
    ASSERT_NE(it, top.end()) << "missing field: " << key;
    EXPECT_EQ(it->second, kind) << key << " is " << kind_name(it->second);
  }

  // Every engine variant row carries the same schema, with the fields the
  // perf-trajectory tooling reads.
  auto rows = array_elements(doc, "engine");
  ASSERT_GE(rows.size(), 2u);
  Schema row0 = object_schema(rows[0]);
  for (const auto& row : rows) {
    EXPECT_EQ(diff_schemas(row0, object_schema(row)), "");
  }
  for (const char* key : {"variant", "shuffle", "exec", "codec"}) {
    EXPECT_EQ(row0[key], Kind::kString) << key;
  }
  for (const char* key :
       {"wall_s", "sim_s", "shuffle_bytes", "shuffle_bytes_wire",
        "spill_bytes", "map_output_records", "allocs"}) {
    EXPECT_EQ(row0[key], Kind::kNumber) << key;
  }
  EXPECT_EQ(row0["spill"], Kind::kBool);
}

TEST(BenchJsonSchema, JsonWriterOutputScansBack) {
  // The schema scanner and the emitter agree on escaping and nesting, so
  // a scanner "malformed" verdict on a committed file means the file is
  // actually stale or hand-mangled, not a tooling artifact.
  bench::JsonWriter j;
  j.field("bench", "schema_test")
      .field("note", "quotes \" backslash \\ newline \n tab \t")
      .field("count", uint64_t{42})
      .field("ratio", 0.125)
      .field("ok", true);
  j.obj("nested").field("inner", int64_t{-7}).close();
  j.arr("rows");
  j.obj_item().field("name", "a").field("v", uint64_t{1}).close();
  j.obj_item().field("name", "b").field("v", uint64_t{2}).close();
  j.close();
  std::string doc = j.finish();

  Schema top = object_schema(doc);
  EXPECT_EQ(top["bench"], Kind::kString);
  EXPECT_EQ(top["note"], Kind::kString);
  EXPECT_EQ(top["count"], Kind::kNumber);
  EXPECT_EQ(top["ratio"], Kind::kNumber);
  EXPECT_EQ(top["ok"], Kind::kBool);
  EXPECT_EQ(top["nested"], Kind::kObject);
  EXPECT_EQ(top["rows"], Kind::kArray);
  auto rows = array_elements(doc, "rows");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(object_schema(rows[1])["name"], Kind::kString);
}

}  // namespace
}  // namespace mrflow
