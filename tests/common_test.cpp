// Unit tests for rng, thread pool, counters, metrics, tracing, logging,
// table rendering and flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/counters.h"
#include "common/flags.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace mrflow {
namespace {

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  rng::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  rng::Xoshiro256 r(7);
  for (uint64_t n : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(n), n);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  rng::Xoshiro256 r(7);
  EXPECT_THROW(r.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversAllValues) {
  rng::Xoshiro256 r(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive) {
  rng::Xoshiro256 r(3);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_hit |= v == -2;
    hi_hit |= v == 2;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, NextDoubleInUnitInterval) {
  rng::Xoshiro256 r(5);
  for (int i = 0; i < 1000; ++i) {
    double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliRate) {
  rng::Xoshiro256 r(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  rng::Xoshiro256 r(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  rng::Xoshiro256 r(17);
  for (auto [n, k] : std::vector<std::pair<uint64_t, uint64_t>>{
           {10, 10}, {100, 3}, {100, 90}, {5, 0}}) {
    auto s = r.sample_without_replacement(n, k);
    EXPECT_EQ(s.size(), k);
    std::set<uint64_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), k);
    for (uint64_t v : s) EXPECT_LT(v, n);
  }
  EXPECT_THROW(r.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ForkIndependent) {
  rng::Xoshiro256 a(21);
  rng::Xoshiro256 b = a.fork();
  EXPECT_NE(a(), b());
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsAllTasks) {
  common::ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  common::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitFuture) {
  common::ThreadPool pool(1);
  auto f = pool.submit([] {});
  f.get();
  auto g = pool.submit([] { throw std::logic_error("x"); });
  EXPECT_THROW(g.get(), std::logic_error);
}

TEST(ThreadPool, ZeroMeansHardware) {
  common::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, EmptyParallelFor) {
  common::ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL(); });
}

// Regression tests for the chunked atomic-counter dispatch: exceptions
// from any chunk propagate (first error wins), every index still runs,
// and the pool stays usable afterwards.

TEST(ThreadPool, AllIndicesRunDespiteExceptions) {
  common::ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](size_t i) {
                                   ++ran;
                                   if (i % 7 == 0) {
                                     throw std::runtime_error("chunk failed");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, FirstErrorWinsAndPoolStaysUsable) {
  common::ThreadPool pool(4);
  // Every index throws its own error type; exactly one must surface.
  std::atomic<int> caught{0};
  try {
    pool.parallel_for(100, [](size_t i) {
      if (i % 2 == 0) throw std::runtime_error("even");
      throw std::logic_error("odd");
    });
  } catch (const std::exception&) {
    ++caught;
  }
  EXPECT_EQ(caught.load(), 1);
  // The pool must accept and complete further work after a failed call.
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
  auto f = pool.submit([&] { ++count; });
  f.get();
  EXPECT_EQ(count.load(), 51);
}

TEST(ThreadPool, SingleIndexRunsOnCallerWithoutQueueing) {
  common::ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ManyTasksFewWorkers) {
  common::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// -------------------------------------------------------------- task graph

TEST(TaskGraph, RunsIndependentTasks) {
  common::ThreadPool pool(4);
  common::TaskGraph graph(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) graph.add([&] { ++count; });
  graph.wait_all();
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskGraph, DependenciesOrderExecution) {
  common::ThreadPool pool(4);
  common::TaskGraph graph(pool);
  std::atomic<int> stage{0};
  // Diamond: a -> {b, c} -> d. Each task asserts its dependencies ran.
  auto a = graph.add([&] { stage = 1; });
  auto b = graph.add([&] { EXPECT_GE(stage.load(), 1); }, {a});
  auto c = graph.add([&] { EXPECT_GE(stage.load(), 1); }, {a});
  std::atomic<bool> d_ran{false};
  graph.add([&] { d_ran = true; }, {b, c});
  graph.wait_all();
  EXPECT_TRUE(d_ran.load());
}

TEST(TaskGraph, ChainRunsInSequence) {
  common::ThreadPool pool(4);
  common::TaskGraph graph(pool);
  std::vector<int> order;  // written only by the single active chain task
  common::TaskGraph::TaskId prev = graph.add([&] { order.push_back(0); });
  for (int i = 1; i < 20; ++i) {
    prev = graph.add([&order, i] { order.push_back(i); }, {prev});
  }
  graph.wait_all();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskGraph, ReleasesDependentsAsSoonAsReady) {
  // A slow task must not delay an independent chain: the fast chain's
  // completion is observable before the slow task finishes.
  common::ThreadPool pool(4);
  common::TaskGraph graph(pool);
  std::promise<void> release_slow;
  std::shared_future<void> gate = release_slow.get_future().share();
  graph.add([gate] { gate.wait(); });
  auto fast = graph.add([] {});
  auto after = graph.add([] {}, {fast});
  graph.future_of(after).get();  // completes while the slow task is blocked
  release_slow.set_value();
  graph.wait_all();
}

TEST(TaskGraph, FailurePoisonsDependentsButNotIndependents) {
  common::ThreadPool pool(4);
  common::TaskGraph graph(pool);
  std::atomic<bool> dependent_ran{false}, independent_ran{false};
  auto bad = graph.add([] { throw std::runtime_error("boom"); });
  auto skipped = graph.add([&] { dependent_ran = true; }, {bad});
  auto transitively_skipped =
      graph.add([&] { dependent_ran = true; }, {skipped});
  graph.add([&] { independent_ran = true; });
  EXPECT_THROW(graph.wait_all(), std::runtime_error);
  EXPECT_FALSE(dependent_ran.load());
  EXPECT_TRUE(independent_ran.load());
  // Skipped tasks report their failed dependency's exception.
  EXPECT_THROW(graph.future_of(transitively_skipped).get(),
               std::runtime_error);
  EXPECT_THROW(graph.future_of(bad).get(), std::runtime_error);
}

TEST(TaskGraph, FutureOfCompletedTask) {
  common::ThreadPool pool(2);
  common::TaskGraph graph(pool);
  auto id = graph.add([] {});
  graph.wait_all();
  graph.future_of(id).get();  // already done: future is immediately ready
}

TEST(TaskGraph, AddingToFinishedDependencyRunsImmediately) {
  common::ThreadPool pool(2);
  common::TaskGraph graph(pool);
  auto a = graph.add([] {});
  graph.wait_all();
  std::atomic<bool> ran{false};
  graph.add([&] { ran = true; }, {a});
  graph.wait_all();
  EXPECT_TRUE(ran.load());
  // ...and a dependency that already *failed* skips the new task too.
  auto bad = graph.add([] { throw std::logic_error("late"); });
  EXPECT_THROW(graph.wait_all(), std::logic_error);
  std::atomic<bool> skipped_ran{false};
  auto skipped = graph.add([&] { skipped_ran = true; }, {bad});
  EXPECT_THROW(graph.future_of(skipped).get(), std::logic_error);
  EXPECT_FALSE(skipped_ran.load());
}

TEST(TaskGraph, TasksCanAddFollowUpTasks) {
  common::ThreadPool pool(4);
  common::TaskGraph graph(pool);
  std::atomic<int> count{0};
  graph.add([&] {
    ++count;
    graph.add([&] {
      ++count;
      graph.add([&] { ++count; });
    });
  });
  graph.wait_all();
  EXPECT_EQ(count.load(), 3);
}

TEST(TaskGraph, ManyTasksRandomDag) {
  common::ThreadPool pool(4);
  common::TaskGraph graph(pool);
  std::atomic<int> done{0};
  std::vector<common::TaskGraph::TaskId> ids;
  for (size_t i = 0; i < 500; ++i) {
    std::vector<common::TaskGraph::TaskId> deps;
    if (i >= 3) {
      deps.push_back(ids[i / 2]);       // layered fan-in
      deps.push_back(ids[i - 1]);
      deps.push_back(ids[i * 7919 % i]);
    }
    ids.push_back(graph.add([&] { ++done; }, deps));
  }
  graph.wait_all();
  EXPECT_EQ(done.load(), 500);
}

// --------------------------------------------------------------- counters

TEST(Counters, IncrementAndRead) {
  common::CounterSet c;
  EXPECT_EQ(c.value("missing"), 0);
  c.increment("a");
  c.increment("a", 4);
  EXPECT_EQ(c.value("a"), 5);
}

TEST(Counters, SetMaxKeepsLargest) {
  common::CounterSet c;
  c.set_max("q", 10);
  c.set_max("q", 3);
  EXPECT_EQ(c.value("q"), 10);
  c.set_max("q", 12);
  EXPECT_EQ(c.value("q"), 12);
}

TEST(Counters, Merge) {
  common::CounterSet a, b;
  a.increment("x", 2);
  b.increment("x", 3);
  b.increment("y", 1);
  a.merge(b);
  EXPECT_EQ(a.value("x"), 5);
  EXPECT_EQ(a.value("y"), 1);
}

TEST(Counters, ConcurrentIncrements) {
  common::CounterSet c;
  common::ThreadPool pool(4);
  pool.parallel_for(1000, [&](size_t) { c.increment("n"); });
  EXPECT_EQ(c.value("n"), 1000);
}

TEST(Counters, CopySnapshot) {
  common::CounterSet a;
  a.increment("k", 7);
  common::CounterSet b = a;
  a.increment("k");
  EXPECT_EQ(b.value("k"), 7);
  EXPECT_EQ(a.value("k"), 8);
}

// Hammer the sharded write path from a pool: totals must be exact, for
// both the add and the max maps, with reads racing the writers.
TEST(Counters, ConcurrentShardedExactTotals) {
  common::CounterSet c;
  common::ThreadPool pool(8);
  constexpr size_t kIters = 20'000;
  pool.parallel_for(kIters, [&](size_t i) {
    c.increment("total");
    c.increment(i % 2 == 0 ? "even" : "odd", 2);
    c.set_max("hwm", static_cast<int64_t>(i));
    if (i % 1000 == 0) (void)c.value("total");  // reads race the writers
  });
  EXPECT_EQ(c.value("total"), static_cast<int64_t>(kIters));
  EXPECT_EQ(c.value("even"), static_cast<int64_t>(kIters));
  EXPECT_EQ(c.value("odd"), static_cast<int64_t>(kIters));
  EXPECT_EQ(c.value("hwm"), static_cast<int64_t>(kIters - 1));
  auto snap = c.snapshot();
  EXPECT_EQ(snap["total"], static_cast<int64_t>(kIters));
}

TEST(Counters, ClearResetsShards) {
  common::CounterSet c;
  common::ThreadPool pool(4);
  pool.parallel_for(100, [&](size_t) { c.increment("n"); });
  c.clear();
  EXPECT_EQ(c.value("n"), 0);
  c.increment("n", 3);
  EXPECT_EQ(c.value("n"), 3);
}

// ---------------------------------------------------------------- metrics

TEST(Histogram, BucketsAndStats) {
  common::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 4.0);
  // value 0 -> bucket 0; 1 -> [1,2); 5 -> [4,8); 1000 -> [512,1024).
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.buckets()[10], 1u);
}

TEST(Histogram, BucketLowerBounds) {
  EXPECT_EQ(common::Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(common::Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(common::Histogram::bucket_lower_bound(2), 2u);
  EXPECT_EQ(common::Histogram::bucket_lower_bound(3), 4u);
  EXPECT_EQ(common::Histogram::bucket_lower_bound(11), 1024u);
}

TEST(Histogram, QuantileClampedToObservedRange) {
  common::Histogram h;
  for (uint64_t v = 100; v < 200; ++v) h.record(v);
  EXPECT_GE(h.quantile(0.0), 100.0);
  EXPECT_LE(h.quantile(1.0), 199.0);
  double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 199.0);
}

TEST(Histogram, MergeIsExact) {
  common::Histogram a, b;
  a.record(3);
  a.record(70);
  b.record(9);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 82u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 70u);
}

TEST(Metrics, RegistryHarvestAndCumulative) {
  common::MetricsRegistry reg;
  reg.record("lat", 10);
  reg.record("lat", 20);
  reg.gauge_max("q", 5);
  reg.gauge_max("q", 3);
  auto snap = reg.harvest();
  EXPECT_EQ(snap.histograms.at("lat").count(), 2u);
  EXPECT_EQ(snap.histograms.at("lat").sum(), 30u);
  EXPECT_EQ(snap.gauges.at("q"), 5);
  // Harvest resets the shards; cumulative keeps the running total.
  auto empty = reg.harvest();
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(reg.cumulative().histograms.at("lat").count(), 2u);
}

// Every thread records into its own shard; harvest must see every event
// exactly once regardless of which pool threads did the recording.
TEST(Metrics, ConcurrentRecordExactCounts) {
  common::MetricsRegistry reg;
  common::ThreadPool pool(8);
  constexpr size_t kIters = 20'000;
  pool.parallel_for(kIters, [&](size_t i) {
    reg.record("v", i);
    reg.gauge_max("peak", static_cast<int64_t>(i));
  });
  auto snap = reg.harvest();
  const auto& h = snap.histograms.at("v");
  EXPECT_EQ(h.count(), kIters);
  EXPECT_EQ(h.sum(), kIters * (kIters - 1) / 2);
  EXPECT_EQ(h.max(), kIters - 1);
  EXPECT_EQ(snap.gauges.at("peak"), static_cast<int64_t>(kIters - 1));
}

TEST(Metrics, SnapshotMergeAndJson) {
  common::MetricsSnapshot a, b;
  a.histograms["h"].record(4);
  a.gauges["g"] = 7;
  b.histograms["h"].record(8);
  b.gauges["g"] = 3;  // merge keeps the max
  a.merge(b);
  EXPECT_EQ(a.histograms["h"].count(), 2u);
  EXPECT_EQ(a.gauges["g"], 7);
  std::string json = a.to_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"h\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
}

// ------------------------------------------------------------------ trace

TEST(Trace, DisabledRecordsNothing) {
  common::trace::clear();
  common::trace::set_enabled(false);
  { common::TraceSpan span("t.noop", "test"); }
  EXPECT_EQ(common::trace::event_count(), 0u);
}

TEST(Trace, RecordsAndExportsSpans) {
  common::trace::clear();
  common::trace::set_enabled(true);
  { common::TraceSpan span("t.unit", "test", /*arg=*/42); }
  common::ThreadPool pool(4);
  pool.parallel_for(64, [&](size_t) {
    common::TraceSpan span("t.parallel", "test");
  });
  common::trace::set_enabled(false);
  // >= rather than ==: pool workers record their own "idle" spans.
  EXPECT_GE(common::trace::event_count(), 65u);
  std::string json = common::trace::chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"t.unit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"task\":42"), std::string::npos);
  size_t parallel_spans = 0;
  for (size_t pos = 0; (pos = json.find("\"t.parallel\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++parallel_spans;
  }
  EXPECT_EQ(parallel_spans, 64u);
  common::trace::clear();
  EXPECT_EQ(common::trace::event_count(), 0u);
}

TEST(Trace, SpanStartedWhileDisabledNeverRecords) {
  common::trace::clear();
  common::trace::set_enabled(false);
  {
    common::TraceSpan span("t.straddle", "test");
    common::trace::set_enabled(true);  // flipped on mid-span
  }
  common::trace::set_enabled(false);
  EXPECT_EQ(common::trace::event_count(), 0u);
  common::trace::clear();
}

// -------------------------------------------------------------------- log

TEST(Log, SinkCapturesPrefixedLines) {
  std::vector<std::pair<common::LogLevel, std::string>> captured;
  common::set_log_sink([&](common::LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  auto saved = common::log_level();
  common::set_log_level(common::LogLevel::kInfo);
  LOG_INFO << "hello " << 42;
  LOG_WARN << "uh oh";
  common::set_log_level(saved);
  common::set_log_sink(nullptr);  // restore stderr

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, common::LogLevel::kInfo);
  // "[I <ms>.<us> tNN] hello 42" -- level tag, timestamp, thread id.
  EXPECT_EQ(captured[0].second[0], '[');
  EXPECT_EQ(captured[0].second[1], 'I');
  EXPECT_NE(captured[0].second.find(" t"), std::string::npos);
  EXPECT_NE(captured[0].second.find("] hello 42"), std::string::npos);
  EXPECT_EQ(captured[1].second[1], 'W');
  EXPECT_NE(captured[1].second.find("] uh oh"), std::string::npos);
}

TEST(Log, ThreadIndexIsStablePerThread) {
  uint32_t a = common::thread_index();
  uint32_t b = common::thread_index();
  EXPECT_EQ(a, b);
  uint32_t other = 0;
  std::thread t([&] { other = common::thread_index(); });
  t.join();
  EXPECT_NE(other, a);
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAligned) {
  common::TextTable t({"Name", "Value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::string out = t.render();
  EXPECT_NE(out.find("| Name   | Value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, MissingAndExtraCells) {
  common::TextTable t({"A", "B"});
  t.add_row({"x"});
  t.add_row({"1", "2", "3"});
  std::string out = t.render();
  EXPECT_NE(out.find("| x | "), std::string::npos);
  EXPECT_EQ(out.find("3"), std::string::npos);
}

TEST(Table, FmtInt) {
  EXPECT_EQ(common::TextTable::fmt_int(0), "0");
  EXPECT_EQ(common::TextTable::fmt_int(999), "999");
  EXPECT_EQ(common::TextTable::fmt_int(1000), "1,000");
  EXPECT_EQ(common::TextTable::fmt_int(1234567), "1,234,567");
  EXPECT_EQ(common::TextTable::fmt_int(-1234567), "-1,234,567");
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(common::TextTable::fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(common::TextTable::fmt_double(2.0, 0), "2");
}

// ------------------------------------------------------------------ flags

std::vector<char*> make_argv(std::vector<std::string>& strs) {
  std::vector<char*> out;
  out.push_back(const_cast<char*>("prog"));
  for (auto& s : strs) out.push_back(s.data());
  return out;
}

TEST(Flags, ParsesForms) {
  std::vector<std::string> args = {"--a=1", "--b=2", "--c", "pos"};
  auto argv = make_argv(args);
  common::Flags f(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("a", 0), 1);
  EXPECT_EQ(f.get_int("b", 0), 2);
  EXPECT_TRUE(f.get_bool("c", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
}

TEST(Flags, Defaults) {
  std::vector<std::string> args;
  auto argv = make_argv(args);
  common::Flags f(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_EQ(f.get_string("s", "x"), "x");
  EXPECT_EQ(f.get_double("d", 1.5), 1.5);
  EXPECT_FALSE(f.get_bool("b", false));
}

TEST(Flags, IntList) {
  std::vector<std::string> args = {"--w=1,2,4,8"};
  auto argv = make_argv(args);
  common::Flags f(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int_list("w", {}),
            (std::vector<int64_t>{1, 2, 4, 8}));
}

TEST(Flags, BadValuesThrow) {
  std::vector<std::string> args = {"--n=abc", "--b=maybe"};
  auto argv = make_argv(args);
  common::Flags f(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(f.get_bool("b", false), std::invalid_argument);
}

TEST(Flags, UnusedFlagDetected) {
  std::vector<std::string> args = {"--typo=1"};
  auto argv = make_argv(args);
  common::Flags f(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(f.check_unused(), std::invalid_argument);
  EXPECT_EQ(f.get_int("typo", 0), 1);
  f.check_unused();  // now consumed
}

}  // namespace
}  // namespace mrflow
