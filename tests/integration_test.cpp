// End-to-end integration tests: the application scenarios from the paper's
// introduction (community identification, sybil defense) run through the
// full stack -- generators -> DFS -> MapReduce FFMR -> min-cut extraction --
// plus cross-engine agreement (MapReduce vs Pregel vs sequential) and
// edge-list round trips through the public API.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "ffmr/solver.h"
#include "flow/max_flow.h"
#include "flow/validate.h"
#include "graph/edgelist_io.h"
#include "graph/generators.h"
#include "pregel/maxflow.h"

namespace mrflow {
namespace {

mr::Cluster make_cluster() {
  mr::ClusterConfig c;
  c.num_slave_nodes = 4;
  c.dfs_block_size = 64 << 10;
  return mr::Cluster(c);
}

// --------------------------------------------------- community detection

TEST(Integration, PlantedCommunityRecoveredByMinCut) {
  const graph::VertexId members = 300;
  const int bridges = 5;
  rng::Xoshiro256 rng(3);
  graph::Graph a = graph::watts_strogatz(members, 8, 0.2, 3);
  graph::Graph g(2 * members);
  for (const auto& e : a.edges()) {
    g.add_undirected(e.a, e.b);
    g.add_undirected(members + e.a, members + e.b);
  }
  for (int i = 0; i < bridges; ++i) {
    g.add_undirected(rng.next_below(members),
                     members + rng.next_below(members));
  }
  graph::VertexId s = g.num_vertices(), t = s + 1;
  g.ensure_vertex(t);
  for (auto v : rng.sample_without_replacement(members, 3)) {
    g.add_edge(s, v, graph::kInfiniteCap, 0);
  }
  for (auto v : rng.sample_without_replacement(members, 3)) {
    g.add_edge(members + v, t, graph::kInfiniteCap, 0);
  }
  g.finalize();

  mr::Cluster cluster = make_cluster();
  ffmr::FfmrOptions o;
  o.async_augmenter = false;
  auto result = ffmr::solve_max_flow(cluster, g, s, t, o);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.max_flow, bridges);  // the bridges are the min cut

  auto side = flow::min_cut_partition(g, s, result.assignment);
  size_t in_a = 0, in_b = 0;
  for (graph::VertexId v = 0; v < members; ++v) in_a += side[v];
  for (graph::VertexId v = members; v < 2 * members; ++v) in_b += side[v];
  EXPECT_EQ(in_a, members);  // all of community A recovered
  EXPECT_EQ(in_b, 0u);       // none of community B leaked
}

// --------------------------------------------------------- sybil defense

TEST(Integration, SybilRegionCappedByAttackEdges) {
  const graph::VertexId honest = 250, sybil = 120;
  const int attack_edges = 3;
  rng::Xoshiro256 rng(5);
  graph::Graph g(honest + sybil);
  graph::Graph h = graph::facebook_like(honest, 8, 5);
  for (const auto& e : h.edges()) g.add_undirected(e.a, e.b);
  graph::Graph sy = graph::barabasi_albert(sybil, 4, 6);
  for (const auto& e : sy.edges()) {
    g.add_undirected(honest + e.a, honest + e.b);
  }
  for (int i = 0; i < attack_edges; ++i) {
    g.add_undirected(rng.next_below(honest), honest + rng.next_below(sybil));
  }
  g.finalize();

  graph::VertexId verifier = 0;
  while (g.degree(verifier) < 6) ++verifier;
  graph::VertexId sybil_suspect = honest + 7;
  graph::VertexId honest_suspect = verifier + 17;

  mr::Cluster c1 = make_cluster();
  ffmr::FfmrOptions o;
  o.async_augmenter = false;
  auto to_sybil =
      ffmr::solve_max_flow(c1, g, verifier, sybil_suspect, o).max_flow;
  mr::Cluster c2 = make_cluster();
  auto to_honest =
      ffmr::solve_max_flow(c2, g, verifier, honest_suspect, o).max_flow;

  EXPECT_LE(to_sybil, attack_edges);  // bottlenecked at the attack edges
  EXPECT_GT(to_honest, attack_edges);  // many disjoint honest paths
}

// -------------------------------------------------- cross-engine agreement

TEST(Integration, AllNineSolversAgree) {
  auto p = graph::attach_super_terminals(graph::facebook_like(350, 8, 11), 3,
                                         6, 13);
  const graph::Graph& g = p.graph;
  auto oracle = flow::max_flow_dinic(g, p.source, p.sink);

  EXPECT_EQ(flow::max_flow_edmonds_karp(g, p.source, p.sink).value,
            oracle.value);
  EXPECT_EQ(flow::max_flow_push_relabel(g, p.source, p.sink).value,
            oracle.value);
  EXPECT_EQ(flow::max_flow_dfs(g, p.source, p.sink).value, oracle.value);

  for (auto v : {ffmr::Variant::FF1, ffmr::Variant::FF2, ffmr::Variant::FF3,
                 ffmr::Variant::FF4, ffmr::Variant::FF5}) {
    mr::Cluster cluster = make_cluster();
    ffmr::FfmrOptions o;
    o.variant = v;
    o.async_augmenter = false;
    EXPECT_EQ(ffmr::solve_max_flow(cluster, g, p.source, p.sink, o).max_flow,
              oracle.value)
        << ffmr::variant_name(v);
  }
  EXPECT_EQ(pregel::pregel_max_flow(g, p.source, p.sink).max_flow,
            oracle.value);
}

// --------------------------------------------------- edge-list round trip

TEST(Integration, EdgeListFileThroughFullPipeline) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mrflow_it_edges.txt")
          .string();
  graph::Graph g = graph::watts_strogatz(150, 4, 0.2, 17);
  graph::write_edgelist_file(g, path);
  graph::Graph loaded = graph::read_edgelist_file(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.num_edge_pairs(), g.num_edge_pairs());

  mr::Cluster cluster = make_cluster();
  ffmr::FfmrOptions o;
  o.async_augmenter = false;
  auto result = ffmr::solve_max_flow(cluster, loaded, 3, 99, o);
  EXPECT_EQ(result.max_flow, flow::max_flow_dinic(g, 3, 99).value);
}

// ------------------------------------------------- repeated use, one cluster

TEST(Integration, SequentialSolvesOnSharedClusterIsolate) {
  // Two solves with different bases on one cluster must not interfere.
  graph::Graph g1 = graph::watts_strogatz(100, 4, 0.2, 19);
  graph::Graph g2 = graph::barabasi_albert(100, 3, 23);
  mr::Cluster cluster = make_cluster();
  ffmr::FfmrOptions o1;
  o1.async_augmenter = false;
  o1.base = "solve1";
  ffmr::FfmrOptions o2 = o1;
  o2.base = "solve2";
  auto r1 = ffmr::solve_max_flow(cluster, g1, 0, 50, o1);
  auto r2 = ffmr::solve_max_flow(cluster, g2, 0, 50, o2);
  EXPECT_EQ(r1.max_flow, flow::max_flow_dinic(g1, 0, 50).value);
  EXPECT_EQ(r2.max_flow, flow::max_flow_dinic(g2, 0, 50).value);
}

// --------------------------------------------------------- disk-backed DFS

TEST(Integration, SolveOnDiskBackedDfs) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "mrflow_it_dfs").string();
  {
    mr::ClusterConfig config;
    config.num_slave_nodes = 3;
    mr::Cluster cluster(config, dfs::make_disk_backend(dir));
    graph::Graph g = graph::watts_strogatz(80, 4, 0.2, 29);
    ffmr::FfmrOptions o;
    o.async_augmenter = false;
    auto result = ffmr::solve_max_flow(cluster, g, 0, 40, o);
    EXPECT_EQ(result.max_flow, flow::max_flow_dinic(g, 0, 40).value);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mrflow
