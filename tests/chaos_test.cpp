// Seed-sweep chaos stress tests: every cell of (graph seed x fault seed x
// fault shape x FF variant) must converge to the *same* answer the
// fault-free run produces -- bit-identical flow value, round count, and
// per-pair assignment -- and the result must carry a validating max-flow /
// min-cut certificate (flow/certify.h). This is the paper's core claim
// about running on MapReduce: the fault-tolerance machinery is invisible
// to the algorithm.
//
// Shapes (see FaultConfig in mapreduce/cluster.h):
//   task       individual task attempts crash and are retried
//   node       whole nodes crash mid-job: attempt-0 tasks fail AND their
//              node-local spill files are lost (spill_map_outputs=true so
//              the loss is real) forcing map re-execution on fetch
//   corrupt    DFS block replicas corrupt on read; the codec's checksummed
//              frames catch it and the reader fails over (wire=kOn so
//              every persistent stream is framed)
//   straggler  slow slots via cost-model multipliers (sim time only)
//   rpc        aug_proc requests time out and are retried with backoff
//
// All draws are deterministic functions of (fault seed, stable ids), so a
// failing cell replays exactly from its test name. The full sweep is
// labeled `stress` in ctest; CI runs a reduced regex of it under both
// sanitizers (-L stress -R <subset>).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ffmr/solver.h"
#include "ffpr/solver.h"
#include "flow/certify.h"
#include "graph/generators.h"

namespace mrflow::ffmr {
namespace {

struct ChaosCase {
  uint64_t graph_seed;
  uint64_t fault_seed;
  const char* shape;  // FaultConfig::shape() name
  Variant variant;
};

std::string chaos_name(const ::testing::TestParamInfo<ChaosCase>& info) {
  const ChaosCase& c = info.param;
  return "GSeed" + std::to_string(c.graph_seed) + "_FSeed" +
         std::to_string(c.fault_seed) + "_" + c.shape + "_" +
         variant_name(c.variant);
}

// Options must match between the baseline and the chaos run for the
// bit-identical comparison to be meaningful; only the FaultConfig differs.
// The node shape needs spilled map outputs (otherwise there is nothing to
// lose) and the corrupt shape needs the wire format (frame checksums are
// what detect the corruption).
FfmrOptions options_for(const ChaosCase& c) {
  FfmrOptions o;
  o.variant = c.variant;
  o.async_augmenter = false;  // deterministic acceptance order
  if (std::string_view(c.shape) == "node") o.spill_map_outputs = true;
  if (std::string_view(c.shape) == "corrupt") o.wire = WireChoice::kOn;
  return o;
}

mr::ClusterConfig cluster_config_for(const ChaosCase& c, bool with_faults) {
  mr::ClusterConfig config;
  config.num_slave_nodes = 3;
  config.map_slots_per_node = 2;
  config.reduce_slots_per_node = 2;
  config.dfs_block_size = 32 << 10;
  config.max_task_attempts = 8;  // keep P(job aborts) ~ 0 at these rates
  if (!with_faults) return config;
  static const std::map<std::string, double> kRates = {
      {"task", 0.05},   {"node", 0.08}, {"corrupt", 0.05},
      {"straggler", 0.25}, {"rpc", 0.05},
  };
  config.fault =
      mr::FaultConfig::shape(c.shape, kRates.at(c.shape), c.fault_seed);
  return config;
}

struct GraphCase {
  graph::Graph g;
  graph::VertexId s = 0, t = 0;
};

GraphCase make_graph(uint64_t seed) {
  GraphCase gc;
  gc.g = graph::watts_strogatz(90, 4, 0.25, seed);
  rng::Xoshiro256 r(seed * 131 + 7);
  gc.s = r.next_below(gc.g.num_vertices());
  gc.t = r.next_below(gc.g.num_vertices());
  if (gc.s == gc.t) gc.t = (gc.t + 1) % gc.g.num_vertices();
  return gc;
}

class ChaosSweep : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, CertifiedAndBitIdenticalToFaultFree) {
  const ChaosCase& c = GetParam();
  GraphCase gc = make_graph(c.graph_seed);

  // Fault-free baseline with the exact same solver options.
  mr::Cluster base_cluster(cluster_config_for(c, /*with_faults=*/false));
  FfmrResult base =
      solve_max_flow(base_cluster, gc.g, gc.s, gc.t, options_for(c));
  ASSERT_TRUE(base.converged);

  // The chaos run: same graph, same options, faults on.
  mr::Cluster cluster(cluster_config_for(c, /*with_faults=*/true));
  FfmrResult result = solve_max_flow(cluster, gc.g, gc.s, gc.t,
                                     options_for(c));
  ASSERT_TRUE(result.converged);

  // Bit-identical outcome: value, round count, and every pair's flow.
  EXPECT_EQ(result.max_flow, base.max_flow);
  EXPECT_EQ(result.rounds, base.rounds);
  EXPECT_EQ(result.assignment.pair_flow, base.assignment.pair_flow);

  // And the self-contained proof: the flow equals the capacity of the
  // residual-reachability cut, with every feasibility check green.
  flow::Certificate cert =
      flow::certify_max_flow(gc.g, gc.s, gc.t, result.assignment);
  EXPECT_TRUE(cert.valid()) << cert.summary();
  EXPECT_EQ(cert.flow_value, cert.cut_capacity);
  EXPECT_EQ(cert.flow_value, result.max_flow);

  // Shape-specific sanity (soft: a given seed may draw no fault, but the
  // machinery must never make things *better*).
  std::string_view shape = c.shape;
  if (shape == "straggler") {
    // Stragglers only inflate simulated time.
    EXPECT_GE(result.totals.sim_seconds, base.totals.sim_seconds);
  } else if (shape == "task" || shape == "node") {
    EXPECT_GE(result.totals.task_retries, base.totals.task_retries);
  }
}

std::vector<ChaosCase> make_chaos_sweep() {
  std::vector<ChaosCase> cases;
  for (uint64_t graph_seed : {101ull, 202ull, 303ull}) {
    for (uint64_t fault_seed : {7ull, 8ull}) {
      for (const char* shape :
           {"task", "node", "corrupt", "straggler", "rpc"}) {
        for (Variant v : {Variant::FF1, Variant::FF2, Variant::FF3,
                          Variant::FF4, Variant::FF5}) {
          cases.push_back({graph_seed, fault_seed, shape, v});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Cells, ChaosSweep,
                         ::testing::ValuesIn(make_chaos_sweep()), chaos_name);

// The "all" shape turns every fault class on at once; one combined cell
// per graph seed keeps the interaction paths (e.g. a node crash during an
// rpc retry storm) covered without squaring the sweep.
class ChaosAllShapes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosAllShapes, EverythingAtOnceStillCertified) {
  uint64_t seed = GetParam();
  GraphCase gc = make_graph(seed);
  FfmrOptions o;
  o.variant = Variant::FF5;
  o.async_augmenter = false;
  o.spill_map_outputs = true;   // give node crashes something to destroy
  o.wire = WireChoice::kOn;     // give corruption something to trip

  mr::ClusterConfig base_config;
  base_config.num_slave_nodes = 3;
  base_config.dfs_block_size = 32 << 10;
  base_config.max_task_attempts = 10;
  mr::Cluster base_cluster(base_config);
  FfmrResult base = solve_max_flow(base_cluster, gc.g, gc.s, gc.t, o);

  mr::ClusterConfig config = base_config;
  config.fault = mr::FaultConfig::shape("all", 0.03, seed + 1000);
  mr::Cluster cluster(config);
  FfmrResult result = solve_max_flow(cluster, gc.g, gc.s, gc.t, o);

  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.max_flow, base.max_flow);
  EXPECT_EQ(result.rounds, base.rounds);
  EXPECT_EQ(result.assignment.pair_flow, base.assignment.pair_flow);
  flow::Certificate cert =
      flow::certify_max_flow(gc.g, gc.s, gc.t, result.assignment);
  EXPECT_TRUE(cert.valid()) << cert.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosAllShapes,
                         ::testing::Values(101ull, 202ull, 303ull));

// ------------------------------------------------------- FF-PR slice
//
// The push-relabel backend runs the same engine (shuffle, spills, wire,
// schimmy) through a different program: wave-synchronous push/lift jobs
// plus MR-BFS relabel phases. Every fault shape must stay invisible to it
// too -- bit-identical waves/flows vs the fault-free run, plus a valid
// certificate. Two graph shapes: the small-world graph the FFMR cells
// use, and a small lattice (FF-PR's home regime, where the relabel phases
// actually fire). Cells carry the FFPR suffix so CI's reduced sanitizer
// slice can select them by regex alongside the FF5 cells.

struct FfprChaosCase {
  const char* graph;  // "smallworld" | "lattice"
  uint64_t fault_seed;
  const char* shape;  // FaultConfig::shape() name
};

std::string ffpr_chaos_name(
    const ::testing::TestParamInfo<FfprChaosCase>& info) {
  const FfprChaosCase& c = info.param;
  return std::string(c.graph) + "_FSeed" + std::to_string(c.fault_seed) +
         "_" + c.shape + "_FFPR";
}

ffpr::FfprOptions ffpr_options_for(const FfprChaosCase& c) {
  ffpr::FfprOptions o;
  if (std::string_view(c.shape) == "node") o.spill_map_outputs = true;
  if (std::string_view(c.shape) == "corrupt") o.wire = WireChoice::kOn;
  return o;
}

GraphCase make_ffpr_graph(const FfprChaosCase& c) {
  GraphCase gc;
  if (std::string_view(c.graph) == "lattice") {
    auto p = graph::lattice_flow_problem(3, 10, 1, /*terminal_cap=*/1);
    gc.g = std::move(p.graph);
    gc.s = p.source;
    gc.t = p.sink;
  } else {
    gc = make_graph(101);
  }
  return gc;
}

class FfprChaosSweep : public ::testing::TestWithParam<FfprChaosCase> {};

TEST_P(FfprChaosSweep, CertifiedAndBitIdenticalToFaultFree) {
  const FfprChaosCase& c = GetParam();
  GraphCase gc = make_ffpr_graph(c);
  ChaosCase rates{0, c.fault_seed, c.shape, Variant::FF5};  // rate table key

  mr::Cluster base_cluster(cluster_config_for(rates, /*with_faults=*/false));
  ffpr::FfprResult base = ffpr::solve_max_flow(base_cluster, gc.g, gc.s,
                                               gc.t, ffpr_options_for(c));
  ASSERT_TRUE(base.converged);

  mr::Cluster cluster(cluster_config_for(rates, /*with_faults=*/true));
  ffpr::FfprResult result = ffpr::solve_max_flow(cluster, gc.g, gc.s, gc.t,
                                                 ffpr_options_for(c));
  ASSERT_TRUE(result.converged);

  // Bit-identical outcome: value, wave/relabel schedule, work counters and
  // every edge's flow.
  EXPECT_EQ(result.max_flow, base.max_flow);
  EXPECT_EQ(result.waves, base.waves);
  EXPECT_EQ(result.relabel_rounds, base.relabel_rounds);
  EXPECT_EQ(result.total_pushes, base.total_pushes);
  EXPECT_EQ(result.total_lifts, base.total_lifts);
  EXPECT_EQ(result.assignment.pair_flow, base.assignment.pair_flow);

  flow::Certificate cert =
      flow::certify_max_flow(gc.g, gc.s, gc.t, result.assignment);
  EXPECT_TRUE(cert.valid()) << cert.summary();
  EXPECT_EQ(cert.flow_value, cert.cut_capacity);
  EXPECT_EQ(cert.flow_value, result.max_flow);

  std::string_view shape = c.shape;
  if (shape == "straggler") {
    EXPECT_GE(result.totals.sim_seconds, base.totals.sim_seconds);
  } else if (shape == "task" || shape == "node") {
    EXPECT_GE(result.totals.task_retries, base.totals.task_retries);
  }
}

std::vector<FfprChaosCase> make_ffpr_chaos_sweep() {
  std::vector<FfprChaosCase> cases;
  for (const char* g : {"smallworld", "lattice"}) {
    for (uint64_t fault_seed : {7ull, 8ull}) {
      for (const char* shape :
           {"task", "node", "corrupt", "straggler", "rpc"}) {
        cases.push_back({g, fault_seed, shape});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Cells, FfprChaosSweep,
                         ::testing::ValuesIn(make_ffpr_chaos_sweep()),
                         ffpr_chaos_name);

// Same fault seed => same failure schedule => identical results and retry
// counts across two runs. This is what makes a red chaos cell debuggable:
// re-running it replays the exact crash sequence.
TEST(ChaosReplay, SameFaultSeedReplaysExactly) {
  GraphCase gc = make_graph(101);
  auto run = [&] {
    mr::ClusterConfig config;
    config.num_slave_nodes = 3;
    config.dfs_block_size = 32 << 10;
    config.max_task_attempts = 8;
    config.fault = mr::FaultConfig::shape("task", 0.08, 42);
    mr::Cluster cluster(config);
    FfmrOptions o;
    o.variant = Variant::FF5;
    o.async_augmenter = false;
    return solve_max_flow(cluster, gc.g, gc.s, gc.t, o);
  };
  FfmrResult a = run();
  FfmrResult b = run();
  EXPECT_GT(a.totals.task_retries, 0);  // the seed must actually draw faults
  EXPECT_EQ(a.totals.task_retries, b.totals.task_retries);
  EXPECT_EQ(a.max_flow, b.max_flow);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.assignment.pair_flow, b.assignment.pair_flow);
  // (sim_seconds is NOT compared: the pipelined engine's run cadence gives
  // the cost model a little run-to-run jitter even without faults.)
}

}  // namespace
}  // namespace mrflow::ffmr
