// FlowService, incremental repair, and shared-round batching tests.
//
// The contract under test is uniform: no matter which layer produced an
// answer (cold solve, repaired warm start, residual/cut cache, shared
// batch), the flow value must equal a cold oracle's on the current graph
// and the assignment must carry a valid max-flow certificate. The sweeps
// therefore run every trace twice -- once through the full service, once
// through a bare cold-resolving oracle service -- and compare query by
// query, including under fault injection (the chaos slice).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "ffmr/solver.h"
#include "flow/certify.h"
#include "flow/max_flow.h"
#include "flow/repair.h"
#include "flow/validate.h"
#include "graph/generators.h"
#include "mapreduce/cluster.h"
#include "service/batch.h"
#include "service/flow_service.h"
#include "service/trace.h"

namespace mrflow {
namespace {

using graph::Capacity;
using graph::VertexId;

// 0 -2-> 1 -1-> 2 -2-> 3: max flow 1, unique cut edge (1, 2).
graph::Graph path_graph() {
  graph::Graph g;
  g.add_edge(0, 1, 2, 0);
  g.add_edge(1, 2, 1, 0);
  g.add_edge(2, 3, 2, 0);
  g.finalize();
  return g;
}

graph::Graph random_graph(VertexId n, uint64_t seed) {
  graph::Graph g = graph::watts_strogatz(n, 4, 0.3, seed);
  g.finalize();
  return g;
}

void expect_feasible(const graph::Graph& g, VertexId s, VertexId t,
                     const graph::FlowAssignment& a, const char* what) {
  auto report = flow::validate_flow(g, s, t, a);
  EXPECT_TRUE(report.ok) << what << ": " << report.summary();
}

// ------------------------------------------------------------- repair

TEST(Repair, IdentityOnValidMaxFlow) {
  graph::Graph g = random_graph(60, 11);
  auto prior = flow::max_flow_dinic(g, 0, 30);
  auto rr = flow::repair_flow(g, 0, 30, prior);
  EXPECT_EQ(rr.flow.value, prior.value);
  EXPECT_EQ(rr.drained, 0);
  EXPECT_EQ(rr.pairs_clamped, 0u);
  expect_feasible(g, 0, 30, rr.flow, "identity repair");
}

TEST(Repair, ClampAfterCapacityCut) {
  graph::Graph g = path_graph();
  auto prior = flow::max_flow_dinic(g, 0, 3);
  ASSERT_EQ(prior.value, 1);
  // Choke the first hop to zero: the unit of flow through it must drain.
  g.set_capacity(0, 0, 0);
  auto rr = flow::repair_flow(g, 0, 3, prior);
  EXPECT_EQ(rr.flow.value, 0);
  EXPECT_EQ(rr.drained, 1);
  EXPECT_EQ(rr.pairs_clamped, 1u);
  expect_feasible(g, 0, 3, rr.flow, "clamped repair");
  // And the repaired flow warm-starts to the true (zero) maximum.
  auto warm = flow::max_flow_dinic_warm(g, 0, 3, rr.flow);
  EXPECT_EQ(warm.value, flow::max_flow_dinic(g, 0, 3).value);
}

TEST(Repair, DrainAfterDelete) {
  graph::Graph g = random_graph(40, 5);
  auto prior = flow::max_flow_dinic(g, 0, 20);
  ASSERT_GT(prior.value, 0);
  // Tombstone every pair that carries flow out of the source.
  for (const auto& arc : g.neighbors(0)) {
    g.set_capacity(arc.pair_index, 0, 0);
  }
  auto rr = flow::repair_flow(g, 0, 20, prior);
  EXPECT_EQ(rr.flow.value, 0);
  expect_feasible(g, 0, 20, rr.flow, "post-delete repair");
}

TEST(Repair, RandomizedFeasibilityAndWarmEquality) {
  rng::Xoshiro256 rng(99);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    graph::Graph g = random_graph(50, seed);
    VertexId s = 0, t = 25;
    auto prior = flow::max_flow_dinic(g, s, t);
    // 1-3 random capacity rewrites, including zeroing.
    int rewrites = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < rewrites; ++i) {
      uint64_t pair = rng.next_below(g.num_edge_pairs());
      g.set_capacity(pair, static_cast<Capacity>(rng.next_below(3)),
                     static_cast<Capacity>(rng.next_below(3)));
    }
    auto rr = flow::repair_flow(g, s, t, prior);
    expect_feasible(g, s, t, rr.flow, "randomized repair");
    EXPECT_LE(rr.flow.value, prior.value);
    auto warm = flow::max_flow_dinic_warm(g, s, t, rr.flow);
    auto cold = flow::max_flow_dinic(g, s, t);
    EXPECT_EQ(warm.value, cold.value) << "seed " << seed;
    auto cert = flow::certify_max_flow(g, s, t, warm);
    EXPECT_TRUE(cert.valid()) << cert.summary();
  }
}

TEST(Repair, DrainsSpuriousImbalanceBackToTerminals) {
  graph::Graph g = path_graph();
  graph::FlowAssignment prior;
  prior.pair_flow = {1, 0, 0};  // enters vertex 1 and never leaves
  prior.value = 1;
  auto rr = flow::repair_flow(g, 0, 3, prior);
  expect_feasible(g, 0, 3, rr.flow, "spurious imbalance");
  EXPECT_EQ(rr.flow.value, 0);
  EXPECT_EQ(rr.drained, 1);
}

TEST(Repair, RejectsBadArguments) {
  graph::Graph g = path_graph();
  graph::FlowAssignment prior;
  EXPECT_THROW(flow::repair_flow(g, 0, 0, prior), std::invalid_argument);
  EXPECT_THROW(flow::repair_flow(g, 0, 99, prior), std::invalid_argument);
  prior.pair_flow.assign(99, 0);
  EXPECT_THROW(flow::repair_flow(g, 0, 3, prior), std::invalid_argument);
}

// -------------------------------------------------------- warm starts

TEST(WarmStart, DinicWarmEqualsColdRandomized) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    graph::Graph g = random_graph(60, seed);
    auto prior = flow::max_flow_dinic(g, 0, 30);
    g.set_capacity(seed % g.num_edge_pairs(), 0, 0);
    auto repaired = flow::repair_flow(g, 0, 30, prior);
    int phases = 0;  // 0 when the repaired flow is already maximum
    auto warm = flow::max_flow_dinic_warm(g, 0, 30, repaired.flow, &phases);
    EXPECT_EQ(warm.value, flow::max_flow_dinic(g, 0, 30).value);
  }
}

TEST(WarmStart, FfmrInitialFlowEqualsCold) {
  graph::Graph g = random_graph(50, 21);
  auto prior = flow::max_flow_dinic(g, 0, 25);
  g.set_capacity(3, 0, 0);
  g.set_capacity(17, 2, 2);
  auto repaired = flow::repair_flow(g, 0, 25, prior);
  Capacity cold_value = flow::max_flow_dinic(g, 0, 25).value;

  for (int variant : {1, 3, 5}) {
    mr::ClusterConfig config;
    config.num_slave_nodes = 3;
    mr::Cluster cluster(config);
    ffmr::FfmrOptions o;
    o.variant = static_cast<ffmr::Variant>(variant);
    o.initial_flow = &repaired.flow;
    auto r = ffmr::solve_max_flow(cluster, g, 0, 25, o);
    EXPECT_EQ(r.max_flow, cold_value) << "FF" << variant;
    auto cert = flow::certify_max_flow(g, 0, 25, r.assignment);
    EXPECT_TRUE(cert.valid()) << "FF" << variant << ": " << cert.summary();
  }
}

// ------------------------------------------------------------ batching

TEST(Batch, MatchesDinicCommonSink) {
  graph::Graph g = random_graph(60, 31);
  mr::ClusterConfig config;
  config.num_slave_nodes = 3;
  mr::Cluster cluster(config);
  std::vector<service::BatchQuery> queries;
  for (uint64_t i = 0; i < 4; ++i) {
    queries.push_back({i, static_cast<VertexId>(3 * i + 1), 50, nullptr});
  }
  service::BatchOptions opt;
  opt.base = "t/batch1";
  auto result = solve_batch(cluster, g, queries, opt);
  ASSERT_EQ(result.queries.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& br = result.queries[i];
    EXPECT_TRUE(br.converged);
    auto oracle = flow::max_flow_dinic(g, queries[i].source, queries[i].sink);
    EXPECT_EQ(br.assignment.value, oracle.value) << "query " << i;
    auto cert = flow::certify_max_flow(g, queries[i].source, queries[i].sink,
                                       br.assignment);
    EXPECT_TRUE(cert.valid()) << "query " << i << ": " << cert.summary();
  }
}

TEST(Batch, WarmSeededConvergesAndMatches) {
  graph::Graph g = random_graph(50, 41);
  auto prior = flow::max_flow_dinic(g, 2, 30);
  g.set_capacity(5, 0, 0);
  auto repaired = flow::repair_flow(g, 2, 30, prior);

  mr::ClusterConfig config;
  config.num_slave_nodes = 3;
  mr::Cluster cluster(config);
  std::vector<service::BatchQuery> queries = {
      {0, 2, 30, &repaired.flow},  // warm
      {1, 7, 30, nullptr},         // cold, same sink
  };
  service::BatchOptions opt;
  opt.base = "t/batch2";
  auto result = solve_batch(cluster, g, queries, opt);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(result.queries[i].converged);
    auto oracle = flow::max_flow_dinic(g, queries[i].source, queries[i].sink);
    EXPECT_EQ(result.queries[i].assignment.value, oracle.value);
  }
}

TEST(Batch, RejectsDuplicateQids) {
  graph::Graph g = path_graph();
  mr::Cluster cluster(mr::ClusterConfig{});
  std::vector<service::BatchQuery> queries = {{7, 0, 3, nullptr},
                                              {7, 1, 3, nullptr}};
  service::BatchOptions opt;
  EXPECT_THROW(solve_batch(cluster, g, queries, opt), std::invalid_argument);
}

// ------------------------------------------------- service unit tests

service::ServiceOptions dinic_options() {
  service::ServiceOptions opt;
  opt.backend = service::Backend::kDinic;
  return opt;
}

TEST(Service, CacheHitAfterRepeatQuery) {
  service::FlowService svc(nullptr, path_graph(), dinic_options());
  auto first = svc.query(0, 3);
  EXPECT_EQ(first.value, 1);
  EXPECT_EQ(first.source, service::AnswerSource::kCold);
  EXPECT_TRUE(first.certified);
  auto second = svc.query(0, 3);
  EXPECT_EQ(second.value, 1);
  EXPECT_EQ(second.source, service::AnswerSource::kCache);
  EXPECT_EQ(svc.counters().cache_hits, 1u);
}

TEST(Service, SurvivalRuleKeepsEntryWhenCutUntouched) {
  service::FlowService svc(nullptr, path_graph(), dinic_options());
  svc.query(0, 3);
  // (0, 1) has both endpoints on the cached source side and keeps room
  // for the stored unit of flow: the certificate still stands.
  svc.set_capacity(0, 1, 3, 0);
  EXPECT_EQ(svc.counters().cache_invalidations, 0u);
  auto r = svc.query(0, 3);
  EXPECT_EQ(r.source, service::AnswerSource::kCache);
  EXPECT_EQ(r.value, 1);
}

TEST(Service, UpdateInsideCutInvalidatesAndWarmRestarts) {
  service::FlowService svc(nullptr, path_graph(), dinic_options());
  svc.query(0, 3);
  // (1, 2) is the cut edge; raising it changes the cut capacity.
  svc.set_capacity(1, 2, 2, 0);
  EXPECT_EQ(svc.counters().cache_invalidations, 1u);
  auto r = svc.query(0, 3);
  EXPECT_EQ(r.source, service::AnswerSource::kWarm);
  EXPECT_EQ(r.value, 2);
  EXPECT_EQ(svc.counters().warm_hits, 1u);
  EXPECT_EQ(svc.counters().repair_rounds, 1u);
}

TEST(Service, DeleteInvalidatesWhenCutEdgeDies) {
  service::FlowService svc(nullptr, path_graph(), dinic_options());
  ASSERT_EQ(svc.query(0, 3).value, 1);
  EXPECT_TRUE(svc.delete_edge(1, 2));
  auto r = svc.query(0, 3);
  EXPECT_EQ(r.value, 0);
  EXPECT_NE(r.source, service::AnswerSource::kCache);
  EXPECT_FALSE(svc.delete_edge(1, 2));  // already tombstoned
  EXPECT_FALSE(svc.delete_edge(0, 2));  // never existed
}

TEST(Service, InsertOpensNewPath) {
  service::FlowService svc(nullptr, path_graph(), dinic_options());
  ASSERT_EQ(svc.query(0, 3).value, 1);
  svc.insert_edge(0, 3, 5, 0);
  auto r = svc.query(0, 3);
  EXPECT_EQ(r.value, 6);
  EXPECT_EQ(svc.counters().inserts, 1u);
}

TEST(Service, SetCapacityOnAbsentPairInserts) {
  service::FlowService svc(nullptr, path_graph(), dinic_options());
  svc.set_capacity(1, 3, 4, 0);
  EXPECT_EQ(svc.counters().inserts, 1u);
  // The shortcut (1, 3) moves the bottleneck to (0, 1)'s capacity of 2.
  EXPECT_EQ(svc.query(0, 3).value, 2);
}

TEST(Service, LruEvictionBeyondCapacity) {
  auto opt = dinic_options();
  opt.cache_capacity = 2;
  service::FlowService svc(nullptr, random_graph(30, 3), opt);
  svc.query(0, 10);
  svc.query(1, 11);
  svc.query(2, 12);  // evicts (0, 10)
  EXPECT_EQ(svc.cache_size(), 2u);
  EXPECT_EQ(svc.counters().cache_evictions, 1u);
  EXPECT_EQ(svc.query(2, 12).source, service::AnswerSource::kCache);
  EXPECT_EQ(svc.query(0, 10).source, service::AnswerSource::kCold);
}

TEST(Service, RejectsBadTerminalsAndConfig) {
  service::FlowService svc(nullptr, path_graph(), dinic_options());
  EXPECT_THROW(svc.query(0, 0), std::invalid_argument);
  EXPECT_THROW(svc.query(0, 99), std::invalid_argument);
  auto opt = dinic_options();
  opt.backend = service::Backend::kFfmr;
  EXPECT_THROW(service::FlowService(nullptr, path_graph(), opt),
               std::invalid_argument);
}

// ------------------------------------------------- randomized sweeps

// Replays `trace` op by op through the service under test and through a
// bare cold oracle (dinic, every layer off), comparing every query.
// Every answer in both services is also internally re-certified.
void differential_replay(service::FlowService& svc,
                         service::FlowService& oracle,
                         const service::Trace& trace, const char* label) {
  for (size_t i = 0; i < trace.size(); ++i) {
    auto got = svc.apply(trace[i]);
    auto want = oracle.apply(trace[i]);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (got.has_value()) {
      EXPECT_EQ(got->value, want->value)
          << label << ": op " << i << " (query " << trace[i].u << " -> "
          << trace[i].v << ") answered via "
          << service::answer_source_name(got->source);
    }
  }
}

service::ServiceOptions oracle_options() {
  service::ServiceOptions opt;
  opt.backend = service::Backend::kDinic;
  opt.warm_start = false;
  opt.cache = false;
  opt.batching = false;
  return opt;
}

TEST(ServiceSweep, DinicLayerMatrixVsOracle) {
  // Every on/off combination of the three layers must answer identically.
  for (int mask = 0; mask < 8; ++mask) {
    graph::Graph g = random_graph(60, 17);
    service::TraceGenOptions topt;
    topt.ops = 48;
    topt.query_fraction = 0.7;
    topt.seed = 100 + static_cast<uint64_t>(mask);
    service::Trace trace = service::generate_trace(g, topt);

    mr::ClusterConfig config;
    config.num_slave_nodes = 2;
    mr::Cluster cluster(config);
    service::ServiceOptions opt = dinic_options();
    opt.warm_start = (mask & 1) != 0;
    opt.cache = (mask & 2) != 0;
    opt.batching = (mask & 4) != 0;
    service::FlowService svc(&cluster, g, opt);
    service::FlowService oracle(nullptr, g, oracle_options());
    // apply() answers queries one at a time, so batching only engages via
    // query_batch below; the mask still exercises its setup/teardown.
    differential_replay(svc, oracle, trace, "dinic matrix");
  }
}

TEST(ServiceSweep, BatchedRepliesMatchOracle) {
  graph::Graph g = random_graph(70, 23);
  mr::ClusterConfig config;
  config.num_slave_nodes = 3;
  mr::Cluster cluster(config);
  service::FlowService svc(&cluster, g, dinic_options());
  service::FlowService oracle(nullptr, g, oracle_options());

  // Common-sink group, common-source pair, and a singleton in one window.
  std::vector<std::pair<VertexId, VertexId>> pairs = {
      {1, 40}, {5, 40}, {9, 40}, {12, 20}, {12, 30}, {3, 60}};
  auto results = svc.query_batch(pairs);
  ASSERT_EQ(results.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(results[i].value,
              oracle.query(pairs[i].first, pairs[i].second).value)
        << "pair " << i;
    EXPECT_TRUE(results[i].certified);
  }
  EXPECT_GT(svc.counters().queries_batched, 0u);
}

TEST(ServiceSweep, FfmrVariantsVsOracle) {
  for (int variant : {1, 2, 3, 4, 5}) {
    graph::Graph g = random_graph(40, 7);
    service::TraceGenOptions topt;
    topt.ops = 20;
    topt.query_fraction = 0.6;
    topt.seed = 200 + static_cast<uint64_t>(variant);
    service::Trace trace = service::generate_trace(g, topt);

    mr::ClusterConfig config;
    config.num_slave_nodes = 2;
    mr::Cluster cluster(config);
    service::ServiceOptions opt;
    opt.backend = service::Backend::kFfmr;
    opt.ffmr.variant = static_cast<ffmr::Variant>(variant);
    service::FlowService svc(&cluster, g, opt);
    service::FlowService oracle(nullptr, g, oracle_options());
    std::string label = "FF" + std::to_string(variant);
    differential_replay(svc, oracle, trace, label.c_str());
  }
}

TEST(ServiceSweep, ChaosFaultInjection) {
  // The chaos slice: task crashes + retries under the FFMR backend with
  // warm starts and caching live. Faulted retries must not change any
  // answer (the batch acceptor and augmenter saturate duplicates away).
  graph::Graph g = random_graph(36, 13);
  service::TraceGenOptions topt;
  topt.ops = 16;
  topt.query_fraction = 0.7;
  topt.seed = 77;
  service::Trace trace = service::generate_trace(g, topt);

  mr::ClusterConfig config;
  config.num_slave_nodes = 2;
  config.fault = mr::FaultConfig::shape("task", 0.05, 7);
  config.max_task_attempts = 8;
  mr::Cluster cluster(config);
  service::ServiceOptions opt;
  opt.backend = service::Backend::kFfmr;
  service::FlowService svc(&cluster, g, opt);
  service::FlowService oracle(nullptr, g, oracle_options());
  differential_replay(svc, oracle, trace, "chaos");
}

TEST(ServiceSweep, ReplayWindowsMatchOracle) {
  graph::Graph g = random_graph(50, 29);
  service::TraceGenOptions topt;
  topt.ops = 40;
  topt.query_fraction = 0.8;
  topt.seed = 31;
  service::Trace trace = service::generate_trace(g, topt);

  mr::ClusterConfig config;
  config.num_slave_nodes = 2;
  mr::Cluster cluster(config);
  service::ServiceOptions opt = dinic_options();
  opt.batch_window = 4;
  service::FlowService svc(&cluster, g, opt);
  auto rr = svc.replay(trace);

  service::FlowService oracle(nullptr, g, oracle_options());
  size_t qi = 0;
  for (const service::Op& op : trace) {
    auto want = oracle.apply(op);
    if (want.has_value()) {
      ASSERT_LT(qi, rr.query_results.size());
      EXPECT_EQ(rr.query_results[qi].value, want->value) << "query " << qi;
      ++qi;
    }
  }
  EXPECT_EQ(qi, rr.query_results.size());
  EXPECT_EQ(rr.queries, qi);
}

// -------------------------------------------------------------- trace

TEST(Trace, GeneratorIsDeterministic) {
  graph::Graph g = random_graph(40, 3);
  service::TraceGenOptions topt;
  topt.ops = 64;
  topt.seed = 9;
  service::Trace a = service::generate_trace(g, topt);
  service::Trace b = service::generate_trace(g, topt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_EQ(a[i].cap_uv, b[i].cap_uv);
    EXPECT_EQ(a[i].cap_vu, b[i].cap_vu);
  }
  topt.seed = 10;
  service::Trace c = service::generate_trace(g, topt);
  bool differs = false;
  for (size_t i = 0; i < a.size() && i < c.size(); ++i) {
    differs = differs || a[i].u != c[i].u || a[i].v != c[i].v;
  }
  EXPECT_TRUE(differs);
}

TEST(Trace, WriteParseRoundTrip) {
  graph::Graph g = random_graph(30, 5);
  service::TraceGenOptions topt;
  topt.ops = 48;
  topt.query_fraction = 0.5;
  service::Trace a = service::generate_trace(g, topt);
  std::ostringstream out;
  service::write_trace(a, out);
  service::Trace b = service::parse_trace_text(out.str());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_EQ(a[i].cap_uv, b[i].cap_uv);
    EXPECT_EQ(a[i].cap_vu, b[i].cap_vu);
  }
}

TEST(Trace, ParseAcceptsCommentsAndMirroredCaps) {
  auto trace = service::parse_trace_text(
      "# a comment\n"
      "query 0 3\n"
      "insert 1 2 5\n"
      "cap 2 3 4 1\n"
      "delete 1 2\n");
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[1].cap_vu, 5);  // mirrored
  EXPECT_EQ(trace[2].cap_vu, 1);  // explicit
}

TEST(Trace, ParseRejectsMalformedLines) {
  EXPECT_THROW(service::parse_trace_text("frobnicate 1 2\n"),
               std::invalid_argument);
  EXPECT_THROW(service::parse_trace_text("query 1\n"), std::invalid_argument);
  EXPECT_THROW(service::parse_trace_text("query 1 2 3\n"),
               std::invalid_argument);
  EXPECT_THROW(service::parse_trace_text("insert 1 2 -4\n"),
               std::invalid_argument);
}

TEST(Trace, DeletesOnlyTouchInsertedEdges) {
  graph::Graph g = random_graph(40, 3);
  service::TraceGenOptions topt;
  topt.ops = 200;
  topt.query_fraction = 0.2;  // update-heavy to draw many deletes
  service::Trace trace = service::generate_trace(g, topt);
  std::set<std::pair<VertexId, VertexId>> inserted;
  for (const service::Op& op : trace) {
    auto key = std::minmax(op.u, op.v);
    if (op.kind == service::OpKind::kInsert) {
      inserted.insert({key.first, key.second});
    } else if (op.kind == service::OpKind::kDelete) {
      EXPECT_TRUE(inserted.count({key.first, key.second}))
          << "delete of a base-graph edge " << op.u << " " << op.v;
    }
  }
}

}  // namespace
}  // namespace mrflow
