// Integration tests for the MapReduce engine: classic jobs, shuffle
// semantics, schimmy merge-join, services, counters, chaining, cost model.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "dfs/record_io.h"
#include "mapreduce/driver.h"
#include "mapreduce/typed.h"

namespace mrflow::mr {
namespace {

Cluster make_cluster(int nodes = 3, uint64_t block = 8 << 10) {
  ClusterConfig c;
  c.num_slave_nodes = nodes;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.dfs_block_size = block;
  return Cluster(c);
}

// Writes words as records (key = word index, value = word).
void write_words(Cluster& cluster, const std::string& file,
                 const std::vector<std::string>& words) {
  dfs::RecordWriter w(&cluster.fs(), file);
  for (size_t i = 0; i < words.size(); ++i) {
    w.write(std::to_string(i), words[i]);
  }
  w.close();
}

std::map<std::string, std::string> read_outputs(Cluster& cluster,
                                                const std::string& prefix,
                                                int parts) {
  std::map<std::string, std::string> out;
  for (int r = 0; r < parts; ++r) {
    dfs::RecordReader reader(&cluster.fs(), partition_file(prefix, r));
    while (auto rec = reader.next()) {
      out[std::string(rec->key)] = std::string(rec->value);
    }
  }
  return out;
}

JobSpec wordcount_spec(const std::string& input, const std::string& output) {
  JobSpec spec;
  spec.name = "wordcount";
  spec.inputs = {input};
  spec.output_prefix = output;
  spec.mapper = lambda_mapper(
      [](std::string_view, std::string_view value, MapContext& ctx) {
        ctx.emit(value, "1");
      });
  spec.reducer = lambda_reducer(
      [](std::string_view key, const Values& values, ReduceContext& ctx) {
        ctx.emit(key, std::to_string(values.size()));
      });
  return spec;
}

TEST(Engine, WordCount) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"a", "b", "a", "c", "a", "b"});
  JobStats stats = run_job(cluster, wordcount_spec("in", "out"));
  auto out = read_outputs(cluster, "out", stats.num_reduce_tasks);
  EXPECT_EQ(out["a"], "3");
  EXPECT_EQ(out["b"], "2");
  EXPECT_EQ(out["c"], "1");
  EXPECT_EQ(stats.map_input_records, 6);
  EXPECT_EQ(stats.map_output_records, 6);
  EXPECT_EQ(stats.reduce_input_groups, 3);
  EXPECT_EQ(stats.reduce_output_records, 3);
  EXPECT_GT(stats.shuffle_bytes, 0u);
  EXPECT_GT(stats.sim_seconds, cluster.config().cost.job_overhead_s);
}

TEST(Engine, WordCountWithCombiner) {
  Cluster cluster = make_cluster();
  std::vector<std::string> words;
  for (int i = 0; i < 300; ++i) words.push_back(i % 2 ? "x" : "y");
  write_words(cluster, "in", words);

  JobSpec plain = wordcount_spec("in", "out1");
  JobStats no_comb = run_job(cluster, plain);

  JobSpec combined = wordcount_spec("in", "out2");
  // Combiner sums partial counts; reducer must sum values, not count them.
  auto summing = lambda_reducer(
      [](std::string_view key, const Values& values, ReduceContext& ctx) {
        int64_t total = 0;
        for (std::string_view v : values) total += std::stoll(std::string(v));
        ctx.emit(key, std::to_string(total));
      });
  combined.combiner = summing;
  combined.reducer = summing;
  JobStats comb = run_job(cluster, combined);

  auto out = read_outputs(cluster, "out2", comb.num_reduce_tasks);
  EXPECT_EQ(out["x"], "150");
  EXPECT_EQ(out["y"], "150");
  EXPECT_LT(comb.shuffle_bytes, no_comb.shuffle_bytes);
}

TEST(Engine, IdentityJobPreservesRecords) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"p", "q", "r"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.mapper = identity_mapper();
  spec.reducer = identity_reducer();
  JobStats stats = run_job(cluster, spec);
  auto out = read_outputs(cluster, "out", stats.num_reduce_tasks);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out["1"], "q");
}

TEST(Engine, ReducerSeesValuesGroupedAndKeysSorted) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"k", "k", "m", "k"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.num_reduce_tasks = 1;
  spec.mapper = lambda_mapper(
      [](std::string_view, std::string_view v, MapContext& ctx) {
        ctx.emit(v, "x");
      });
  std::string seen_order;  // updated via counters-free trick: emit order
  spec.reducer = lambda_reducer(
      [](std::string_view key, const Values& values, ReduceContext& ctx) {
        ctx.emit(key, std::to_string(values.size()));
      });
  run_job(cluster, spec);
  // Single partition file: records appear in sorted key order.
  dfs::RecordReader r(&cluster.fs(), partition_file("out", 0));
  std::vector<std::string> keys;
  while (auto rec = r.next()) keys.push_back(std::string(rec->key));
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "k");
  EXPECT_EQ(keys[1], "m");
}

TEST(Engine, CountersFlowToStats) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"a", "b", "c"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.mapper = lambda_mapper(
      [](std::string_view, std::string_view, MapContext& ctx) {
        ctx.counters().increment("mapped");
      });
  spec.reducer = lambda_reducer(
      [](std::string_view, const Values&, ReduceContext& ctx) {
        ctx.counters().increment("reduced");
      });
  JobStats stats = run_job(cluster, spec);
  EXPECT_EQ(stats.counters.value("mapped"), 3);
  EXPECT_EQ(stats.counters.value("reduced"), 0);  // nothing emitted
}

TEST(Engine, ParamsReachTasks) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"z"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.params["greeting"] = "hi";
  spec.params["n"] = "41";
  spec.mapper = lambda_mapper(
      [](std::string_view k, std::string_view, MapContext& ctx) {
        EXPECT_EQ(ctx.param("greeting"), "hi");
        EXPECT_EQ(ctx.param_int("n", 0), 41);
        EXPECT_EQ(ctx.param_or("missing", "d"), "d");
        EXPECT_THROW(ctx.param("missing"), std::invalid_argument);
        ctx.emit(k, "");
      });
  spec.reducer = identity_reducer();
  run_job(cluster, spec);
}

TEST(Engine, SideFiles) {
  Cluster cluster = make_cluster();
  cluster.fs().write_all("side", "broadcast-data");
  write_words(cluster, "in", {"a"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.mapper = lambda_mapper(
      [](std::string_view k, std::string_view, MapContext& ctx) {
        EXPECT_TRUE(ctx.side_file_exists("side"));
        EXPECT_FALSE(ctx.side_file_exists("missing"));
        ctx.emit(k, ctx.read_side_file("side"));
      });
  spec.reducer = identity_reducer();
  JobStats stats = run_job(cluster, spec);
  auto out = read_outputs(cluster, "out", stats.num_reduce_tasks);
  EXPECT_EQ(out["0"], "broadcast-data");
}

TEST(Engine, SideFileLocalizedOncePerNode) {
  // Hadoop's DistributedCache localizes a cache file once per node, not
  // once per task. Run the same job with and without side-file reads; the
  // extra DFS read bytes must be a whole number of copies, at most one per
  // node -- strictly fewer than one per map task.
  static constexpr uint64_t kSideSize = 4096;
  static constexpr int kNodes = 3;
  auto run = [&](bool read_side) {
    Cluster cluster = make_cluster(kNodes, 1 << 10);
    cluster.fs().write_all("side", std::string(kSideSize, 's'));
    std::vector<std::string> words(300, "wordwordword");
    write_words(cluster, "in", words);
    JobSpec spec;
    spec.inputs = {"in"};
    spec.output_prefix = "out";
    spec.num_reduce_tasks = 2;
    spec.mapper = lambda_mapper(
        [read_side](std::string_view k, std::string_view, MapContext& ctx) {
          if (read_side) {
            EXPECT_EQ(ctx.read_side_file("side").size(), kSideSize);
          }
          ctx.emit(k, "");
        });
    spec.reducer = identity_reducer();
    JobStats stats = run_job(cluster, spec);
    return std::pair(stats.num_map_tasks, cluster.fs().io_stats().total_read());
  };
  auto [map_tasks, with_reads] = run(true);
  auto [map_tasks2, without_reads] = run(false);
  ASSERT_EQ(map_tasks, map_tasks2);
  ASSERT_GT(map_tasks, kNodes);  // more tasks than nodes, or the test is vacuous
  uint64_t delta = with_reads - without_reads;
  EXPECT_EQ(delta % kSideSize, 0u);
  uint64_t copies = delta / kSideSize;
  EXPECT_GE(copies, 1u);
  EXPECT_LE(copies, static_cast<uint64_t>(kNodes));
}

// A service that reverses its request.
class ReverseService final : public Service {
 public:
  serde::Bytes handle(std::string_view request) override {
    return serde::Bytes(request.rbegin(), request.rend());
  }
};

TEST(Engine, ServicesCallableWithAccounting) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"abc", "de"});
  ServiceRegistry services;
  services.add("rev", std::make_shared<ReverseService>());
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.services = &services;
  spec.mapper = lambda_mapper(
      [](std::string_view k, std::string_view v, MapContext& ctx) {
        ctx.emit(k, ctx.call_service("rev", v));
      });
  spec.reducer = identity_reducer();
  JobStats stats = run_job(cluster, spec);
  auto out = read_outputs(cluster, "out", stats.num_reduce_tasks);
  EXPECT_EQ(out["0"], "cba");
  EXPECT_EQ(out["1"], "ed");
  EXPECT_EQ(stats.rpc_calls, 2u);
  EXPECT_EQ(stats.rpc_request_bytes, 5u);
  EXPECT_EQ(stats.rpc_response_bytes, 5u);
}

TEST(Engine, UnknownServiceThrows) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"x"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.mapper = lambda_mapper(
      [](std::string_view, std::string_view, MapContext& ctx) {
        ctx.call_service("nope", "");
      });
  spec.reducer = identity_reducer();
  EXPECT_THROW(run_job(cluster, spec), std::logic_error);
}

TEST(Engine, SchimmyMergeJoin) {
  Cluster cluster = make_cluster();
  // Round A: produce keyed state.
  write_words(cluster, "in", {"a", "b", "c"});
  JobSpec a;
  a.inputs = {"in"};
  a.output_prefix = "roundA";
  a.num_reduce_tasks = 2;
  a.mapper = lambda_mapper(
      [](std::string_view, std::string_view v, MapContext& ctx) {
        ctx.emit(v, "master");
      });
  a.reducer = identity_reducer();
  run_job(cluster, a);

  // Round B: mappers emit fragments for keys a and b only; masters come via
  // schimmy. Key c must still reach the reducer (schimmy-only key).
  JobSpec b;
  b.inputs = {"in"};
  b.output_prefix = "roundB";
  b.num_reduce_tasks = 2;
  b.schimmy_prefix = "roundA";
  b.mapper = lambda_mapper(
      [](std::string_view, std::string_view v, MapContext& ctx) {
        if (v != "c") ctx.emit(v, "frag");
      });
  b.reducer = lambda_reducer(
      [](std::string_view key, const Values& values, ReduceContext& ctx) {
        std::string joined;
        for (std::string_view v : values) {
          joined += std::string(v) + ";";
        }
        ctx.emit(key, joined);
      });
  JobStats stats = run_job(cluster, b);
  auto out = read_outputs(cluster, "roundB", 2);
  EXPECT_EQ(out["a"], "master;frag;");  // master values come first
  EXPECT_EQ(out["b"], "master;frag;");
  EXPECT_EQ(out["c"], "master;");
  EXPECT_GT(stats.schimmy_bytes, 0u);
}

TEST(Engine, SchimmyRequiresSortedPartitions) {
  Cluster cluster = make_cluster();
  // Hand-craft an unsorted "previous round" partition for every reduce task
  // of the next job, with keys that both land in the same partition.
  const int parts = 2;
  Partitioner part = default_partitioner();
  std::vector<std::pair<std::string, std::string>> keys;
  for (int i = 0; i < 100 && keys.size() < 2; ++i) {
    std::string k = "key" + std::to_string(i);
    if (part(k, parts) == 0) keys.emplace_back(k, "v");
  }
  ASSERT_EQ(keys.size(), 2u);
  std::sort(keys.begin(), keys.end());
  std::swap(keys[0], keys[1]);  // break the order
  {
    dfs::RecordWriter w(&cluster.fs(), partition_file("bad", 0));
    for (auto& [k, v] : keys) w.write(k, v);
    w.close();
    dfs::RecordWriter w1(&cluster.fs(), partition_file("bad", 1));
    w1.close();
  }
  write_words(cluster, "in", {"x"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.num_reduce_tasks = parts;
  spec.schimmy_prefix = "bad";
  spec.mapper = lambda_mapper(
      [](std::string_view, std::string_view, MapContext&) {});
  spec.reducer = identity_reducer();
  EXPECT_THROW(run_job(cluster, spec), std::logic_error);
}

TEST(Engine, DeterministicAcrossClusterSizes) {
  auto run_with = [](int nodes, uint64_t block) {
    Cluster cluster = make_cluster(nodes, block);
    std::vector<std::string> words;
    for (int i = 0; i < 500; ++i) {
      words.push_back("w" + std::to_string(i % 37));
    }
    write_words(cluster, "in", words);
    JobSpec spec = wordcount_spec("in", "out");
    spec.num_reduce_tasks = 4;
    JobStats stats = run_job(cluster, spec);
    return read_outputs(cluster, "out", stats.num_reduce_tasks);
  };
  auto a = run_with(1, 2 << 10);
  auto b = run_with(4, 8 << 10);
  auto c = run_with(7, 1 << 10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Engine, MultipleInputFiles) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in1", {"a", "b"});
  write_words(cluster, "in2", {"b", "c"});
  JobSpec spec = wordcount_spec("in1", "out");
  spec.inputs = {"in1", "in2"};
  JobStats stats = run_job(cluster, spec);
  auto out = read_outputs(cluster, "out", stats.num_reduce_tasks);
  EXPECT_EQ(out["b"], "2");
  EXPECT_EQ(stats.map_input_records, 4);
}

TEST(Engine, DeleteInputsAfter) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"a"});
  JobSpec spec = wordcount_spec("in", "out");
  spec.delete_inputs_after = true;
  run_job(cluster, spec);
  EXPECT_FALSE(cluster.fs().exists("in"));
}

TEST(Engine, CustomPartitioner) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"aa", "ab", "ba", "bb"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.num_reduce_tasks = 2;
  spec.partitioner = [](std::string_view key, int) {
    return key.empty() || key[0] != 'a' ? 1u : 0u;
  };
  spec.mapper = lambda_mapper(
      [](std::string_view, std::string_view v, MapContext& ctx) {
        ctx.emit(v, "");
      });
  spec.reducer = identity_reducer();
  run_job(cluster, spec);
  dfs::RecordReader r0(&cluster.fs(), partition_file("out", 0));
  while (auto rec = r0.next()) EXPECT_EQ(rec->key[0], 'a');
  dfs::RecordReader r1(&cluster.fs(), partition_file("out", 1));
  while (auto rec = r1.next()) EXPECT_EQ(rec->key[0], 'b');
}

TEST(Engine, TaskExceptionPropagates) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"x"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.mapper = lambda_mapper(
      [](std::string_view, std::string_view, MapContext&) {
        throw std::runtime_error("mapper exploded");
      });
  spec.reducer = identity_reducer();
  EXPECT_THROW(run_job(cluster, spec), std::runtime_error);
}

TEST(Engine, MissingPiecesThrow) {
  Cluster cluster = make_cluster();
  JobSpec spec;
  spec.output_prefix = "out";
  spec.reducer = identity_reducer();
  EXPECT_THROW(run_job(cluster, spec), std::invalid_argument);  // no mapper
  spec.mapper = identity_mapper();
  spec.reducer = nullptr;
  EXPECT_THROW(run_job(cluster, spec), std::invalid_argument);
  spec.reducer = identity_reducer();
  spec.output_prefix = "";
  EXPECT_THROW(run_job(cluster, spec), std::invalid_argument);
}

TEST(Engine, StableHashIsStable) {
  EXPECT_EQ(stable_hash("abc"), stable_hash("abc"));
  EXPECT_NE(stable_hash("abc"), stable_hash("abd"));
  // Pinned partition-hash values: xxHash64 under the V1 seed. These may
  // never change for existing data -- a new scheme must add a V2 seed
  // (see common/hash.h).
  EXPECT_EQ(stable_hash(""), 0xC4349FC93C010000ULL);
  EXPECT_EQ(stable_hash("abc"), 0x2ED0F59D6B43AC8BULL);
  EXPECT_EQ(stable_hash("x"), hash::xxhash64("x", hash::kPartitionSeedV1));
}

TEST(Engine, ShuffleBytesSplitLocalRemote) {
  Cluster cluster = make_cluster(4);
  std::vector<std::string> words;
  for (int i = 0; i < 200; ++i) words.push_back("k" + std::to_string(i));
  write_words(cluster, "in", words);
  JobStats stats = run_job(cluster, wordcount_spec("in", "out"));
  EXPECT_LE(stats.shuffle_bytes_remote, stats.shuffle_bytes);
  EXPECT_GT(stats.shuffle_bytes_remote, 0u);
}

// --------------------------------------------------------- fault tolerance

TEST(Faults, InjectedFailuresAreRetriedTransparently) {
  ClusterConfig config;
  config.num_slave_nodes = 3;
  config.dfs_block_size = 2 << 10;
  config.fault.task_failure_probability = 0.35;
  config.max_task_attempts = 10;  // keep P(task exhausts attempts) ~ 0
  config.fault.seed = 17;
  Cluster cluster(config);
  std::vector<std::string> words;
  for (int i = 0; i < 400; ++i) words.push_back("w" + std::to_string(i % 23));
  write_words(cluster, "in", words);
  JobSpec spec = wordcount_spec("in", "out");
  spec.num_reduce_tasks = 6;
  JobStats stats = run_job(cluster, spec);
  EXPECT_GT(stats.task_retries, 0);
  auto out = read_outputs(cluster, "out", 6);
  // Same answer as a failure-free run.
  Cluster clean = make_cluster();
  write_words(clean, "in", words);
  JobSpec spec2 = wordcount_spec("in", "out");
  spec2.num_reduce_tasks = 6;
  JobStats clean_stats = run_job(clean, spec2);
  EXPECT_EQ(clean_stats.task_retries, 0);
  EXPECT_EQ(out, read_outputs(clean, "out", 6));
}

TEST(Faults, DeterministicInjection) {
  auto retries_with_seed = [](uint64_t seed) {
    ClusterConfig config;
    config.num_slave_nodes = 2;
    config.fault.task_failure_probability = 0.4;
    config.fault.seed = seed;
    Cluster cluster(config);
    std::vector<std::string> words(100, "x");
    write_words(cluster, "in", words);
    return run_job(cluster, wordcount_spec("in", "out")).task_retries;
  };
  EXPECT_EQ(retries_with_seed(5), retries_with_seed(5));
}

TEST(Faults, PermanentFailureFailsJob) {
  ClusterConfig config;
  config.num_slave_nodes = 2;
  config.fault.task_failure_probability = 1.0;  // every attempt dies
  config.max_task_attempts = 3;
  Cluster cluster(config);
  write_words(cluster, "in", {"a"});
  EXPECT_THROW(run_job(cluster, wordcount_spec("in", "out")),
               std::runtime_error);
}

TEST(Faults, UserExceptionsAlsoRetriedUntilBudget) {
  // A mapper that fails on its first attempt only (simulating a transient
  // environment error) succeeds once retried.
  ClusterConfig config;
  config.num_slave_nodes = 1;
  config.max_task_attempts = 4;
  Cluster cluster(config);
  write_words(cluster, "in", {"a"});
  auto flaky_done = std::make_shared<std::atomic<bool>>(false);
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.mapper = lambda_mapper(
      [flaky_done](std::string_view k, std::string_view, MapContext& ctx) {
        if (!flaky_done->exchange(true)) {
          throw std::runtime_error("transient");
        }
        ctx.emit(k, "ok");
      });
  spec.reducer = identity_reducer();
  JobStats stats = run_job(cluster, spec);
  EXPECT_EQ(stats.task_retries, 1);
  EXPECT_EQ(stats.reduce_output_records, 1);
}

TEST(Faults, RetriesFireMidPipelineWithSpills) {
  // Failures injected while the pipelined task graph is in flight: map
  // retries re-spill over their earlier runs, reduce retries re-fetch
  // spilled runs. Outputs and exact counters must match a clean run, and
  // every spill file must be gone at job end.
  auto run = [](double failure_probability) {
    ClusterConfig config;
    config.num_slave_nodes = 3;
    config.dfs_block_size = 2 << 10;
    config.fault.task_failure_probability = failure_probability;
    config.fault.seed = 29;
    config.max_task_attempts = 12;
    config.reduce_fetch_buffer_bytes = 512;  // force streamed (over-budget) runs
    Cluster cluster(config);
    std::vector<std::string> words;
    for (int i = 0; i < 400; ++i) words.push_back("w" + std::to_string(i % 23));
    write_words(cluster, "in", words);
    JobSpec spec = wordcount_spec("in", "out");
    spec.num_reduce_tasks = 6;
    spec.exec = ExecMode::kPipelined;
    spec.spill_map_outputs = true;
    JobStats stats = run_job(cluster, spec);
    EXPECT_TRUE(cluster.fs().list("__spill__/").empty());
    return std::pair(stats, read_outputs(cluster, "out", 6));
  };
  auto [faulty, faulty_out] = run(0.3);
  auto [clean, clean_out] = run(0.0);
  EXPECT_GT(faulty.task_retries, 0);
  EXPECT_EQ(clean.task_retries, 0);
  EXPECT_EQ(faulty_out, clean_out);
  EXPECT_EQ(faulty.map_output_records, clean.map_output_records);
  EXPECT_EQ(faulty.reduce_input_groups, clean.reduce_input_groups);
  EXPECT_EQ(faulty.reduce_output_records, clean.reduce_output_records);
  EXPECT_EQ(faulty.map_output_bytes, clean.map_output_bytes);
  EXPECT_EQ(faulty.shuffle_bytes, clean.shuffle_bytes);
  EXPECT_EQ(faulty.spill_bytes, clean.spill_bytes);
  EXPECT_EQ(faulty.spill_bytes, faulty.map_output_bytes);
}

TEST(Faults, SpillsRemovedWhenJobFails) {
  // The spill GC must fire on the failure path too: maps complete and
  // spill their runs, then every reduce attempt dies and the job throws.
  ClusterConfig config;
  config.num_slave_nodes = 2;
  config.max_task_attempts = 2;
  Cluster cluster(config);
  write_words(cluster, "in", {"a", "b", "c"});
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.spill_map_outputs = true;
  spec.mapper = identity_mapper();
  spec.reducer = lambda_reducer(
      [](std::string_view, const Values&, ReduceContext&) -> void {
        throw std::runtime_error("reducer exploded");
      });
  EXPECT_THROW(run_job(cluster, spec), std::runtime_error);
  EXPECT_TRUE(cluster.fs().list("__spill__/").empty());
}

TEST(Faults, SpillLifecycleEndsWithJob) {
  // Success path: spilled bytes are accounted, outputs match the non-spill
  // run byte for byte, and no spill file survives the job.
  auto run = [](bool spill) {
    Cluster cluster = make_cluster();
    std::vector<std::string> words;
    for (int i = 0; i < 200; ++i) words.push_back("k" + std::to_string(i % 17));
    write_words(cluster, "in", words);
    JobSpec spec = wordcount_spec("in", "out");
    spec.num_reduce_tasks = 4;
    spec.spill_map_outputs = spill;
    JobStats stats = run_job(cluster, spec);
    EXPECT_TRUE(cluster.fs().list("__spill__/").empty());
    return std::pair(stats, read_outputs(cluster, "out", 4));
  };
  auto [spilled, spilled_out] = run(true);
  auto [resident, resident_out] = run(false);
  EXPECT_EQ(spilled_out, resident_out);
  EXPECT_EQ(spilled.spill_bytes, spilled.map_output_bytes);
  EXPECT_EQ(resident.spill_bytes, 0u);
  EXPECT_EQ(spilled.shuffle_bytes, resident.shuffle_bytes);
}

// ----------------------------------------------------------- fault matrix

TEST(Faults, DrawsIndependentAcrossJobs) {
  // The job name is hashed into every fault draw, so two jobs (or two
  // rounds of one solver) see uncorrelated failure schedules from the same
  // cluster seed -- a crash in round k must not imply one at the same task
  // slot in round k+1. Referenced from maybe_inject_failure (job.cpp).
  FaultConfig fault;
  fault.task_failure_probability = 0.5;
  fault.seed = 11;
  int fails_a = 0, fails_b = 0, differ = 0;
  const int kTasks = 500, kAttempts = 4;
  for (int task = 0; task < kTasks; ++task) {
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      bool a = fault.task_attempt_fails("round#1", "map", task, attempt);
      bool b = fault.task_attempt_fails("round#2", "map", task, attempt);
      fails_a += a;
      fails_b += b;
      differ += a != b;
      // Same coordinates => same draw, every time.
      EXPECT_EQ(a, fault.task_attempt_fails("round#1", "map", task, attempt));
    }
  }
  const int n = kTasks * kAttempts;
  // Each stream individually tracks p = 0.5 ...
  EXPECT_GT(fails_a, n * 2 / 5);
  EXPECT_LT(fails_a, n * 3 / 5);
  EXPECT_GT(fails_b, n * 2 / 5);
  EXPECT_LT(fails_b, n * 3 / 5);
  // ... and they disagree about as often as independent coins do.
  EXPECT_GT(differ, n * 2 / 5);
  EXPECT_LT(differ, n * 3 / 5);
}

TEST(Faults, ShapeFactoryConfiguresOneClass) {
  FaultConfig none;
  EXPECT_FALSE(none.any());

  FaultConfig node = FaultConfig::shape("node", 0.1, 5);
  EXPECT_TRUE(node.any());
  EXPECT_DOUBLE_EQ(node.node_crash_probability, 0.1);
  EXPECT_DOUBLE_EQ(node.task_failure_probability, 0.0);
  EXPECT_DOUBLE_EQ(node.corrupt_read_probability, 0.0);
  EXPECT_DOUBLE_EQ(node.rpc_timeout_probability, 0.0);
  EXPECT_DOUBLE_EQ(node.straggler_probability, 0.0);
  EXPECT_EQ(node.seed, 5u);

  FaultConfig all = FaultConfig::shape("all", 0.05, 6);
  EXPECT_DOUBLE_EQ(all.task_failure_probability, 0.05);
  EXPECT_DOUBLE_EQ(all.node_crash_probability, 0.05);
  EXPECT_DOUBLE_EQ(all.corrupt_read_probability, 0.05);
  EXPECT_DOUBLE_EQ(all.straggler_probability, 0.05);
  EXPECT_DOUBLE_EQ(all.rpc_timeout_probability, 0.05);

  EXPECT_THROW(FaultConfig::shape("bogus", 0.1, 1), std::invalid_argument);
}

TEST(Faults, NodeCrashLosesSpillsAndRecovers) {
  // Pick a fault seed whose schedule crashes at least one of the three
  // nodes for this job name, so the test is deterministic, then verify the
  // job re-executes the lost work and produces the failure-free answer.
  FaultConfig fault;
  fault.node_crash_probability = 0.3;
  while (true) {
    bool any = false;
    for (int n = 0; n < 3; ++n) any |= fault.node_crashes("nodecrash", n);
    if (any) break;
    ++fault.seed;
  }

  std::vector<std::string> words;
  for (int i = 0; i < 300; ++i) words.push_back("w" + std::to_string(i % 19));

  ClusterConfig config;
  config.num_slave_nodes = 3;
  config.dfs_block_size = 2 << 10;
  config.max_task_attempts = 4;
  config.fault = fault;
  Cluster cluster(config);
  write_words(cluster, "in", words);
  JobSpec spec = wordcount_spec("in", "out");
  spec.name = "nodecrash";
  spec.num_reduce_tasks = 4;
  spec.spill_map_outputs = true;  // give the crash spill files to destroy
  JobStats stats = run_job(cluster, spec);
  EXPECT_GT(stats.task_retries, 0);
  EXPECT_TRUE(cluster.fs().list("__spill__/").empty());

  Cluster clean = make_cluster();
  write_words(clean, "in", words);
  JobSpec clean_spec = wordcount_spec("in", "out");
  clean_spec.num_reduce_tasks = 4;
  clean_spec.spill_map_outputs = true;
  run_job(clean, clean_spec);
  EXPECT_EQ(read_outputs(cluster, "out", 4), read_outputs(clean, "out", 4));
}

TEST(Faults, StragglersInflateSimTimeOnly) {
  auto run = [](double prob) {
    ClusterConfig config;
    config.num_slave_nodes = 3;
    config.fault.straggler_probability = prob;
    config.fault.straggler_slowdown = 6.0;
    config.fault.seed = 13;
    Cluster cluster(config);
    std::vector<std::string> words(200, "x");
    write_words(cluster, "in", words);
    JobSpec spec = wordcount_spec("in", "out");
    spec.num_reduce_tasks = 4;
    auto stats = run_job(cluster, spec);
    return std::pair(stats, read_outputs(cluster, "out", 4));
  };
  auto [slow, slow_out] = run(1.0);
  auto [fast, fast_out] = run(0.0);
  // Identical work, identical records and bytes -- only simulated time
  // moves, because a straggler is purely a cost-model multiplier.
  EXPECT_EQ(slow_out, fast_out);
  EXPECT_EQ(slow.task_retries, 0);
  EXPECT_EQ(slow.map_output_records, fast.map_output_records);
  EXPECT_EQ(slow.shuffle_bytes, fast.shuffle_bytes);
  EXPECT_GT(slow.sim_seconds, fast.sim_seconds);
  // The slowdown factor bounds the damage: nothing else was touched.
  EXPECT_LE(slow.sim_seconds, fast.sim_seconds * 6.0);
}

TEST(Faults, RpcTimeoutsRetriedWithBackoff) {
  auto run = [](double prob) {
    ClusterConfig config;
    config.num_slave_nodes = 2;
    config.fault.rpc_timeout_probability = prob;
    config.fault.rpc_max_retries = 16;  // P(16 consecutive timeouts) ~ 0
    config.fault.seed = 29;
    Cluster cluster(config);
    write_words(cluster, "in", {"abc", "defg", "hi", "jklm", "nop"});
    ServiceRegistry services;
    services.add("rev", std::make_shared<ReverseService>());
    JobSpec spec;
    spec.name = "rpcjob";
    spec.inputs = {"in"};
    spec.output_prefix = "out";
    spec.services = &services;
    spec.mapper = lambda_mapper(
        [](std::string_view k, std::string_view v, MapContext& ctx) {
          ctx.emit(k, ctx.call_service("rev", v));
        });
    spec.reducer = identity_reducer();
    auto stats = run_job(cluster, spec);
    return std::pair(stats, read_outputs(cluster, "out",
                                         stats.num_reduce_tasks));
  };
  auto [faulty, faulty_out] = run(0.5);
  auto [clean, clean_out] = run(0.0);
  // Every request eventually lands exactly once: same responses, same rpc
  // accounting; the retries only cost simulated backoff time.
  EXPECT_EQ(faulty_out, clean_out);
  EXPECT_EQ(faulty_out.at("0"), "cba");
  EXPECT_EQ(faulty.rpc_calls, clean.rpc_calls);
  EXPECT_EQ(faulty.rpc_request_bytes, clean.rpc_request_bytes);
  EXPECT_GT(faulty.sim_seconds, clean.sim_seconds);
}

TEST(Faults, RpcTimeoutExhaustionFailsJob) {
  ClusterConfig config;
  config.num_slave_nodes = 1;
  config.fault.rpc_timeout_probability = 1.0;  // every send times out
  config.fault.rpc_max_retries = 2;
  config.max_task_attempts = 2;
  Cluster cluster(config);
  write_words(cluster, "in", {"x"});
  ServiceRegistry services;
  services.add("rev", std::make_shared<ReverseService>());
  JobSpec spec;
  spec.inputs = {"in"};
  spec.output_prefix = "out";
  spec.services = &services;
  spec.mapper = lambda_mapper(
      [](std::string_view k, std::string_view v, MapContext& ctx) {
        ctx.emit(k, ctx.call_service("rev", v));
      });
  spec.reducer = identity_reducer();
  EXPECT_THROW(run_job(cluster, spec), std::runtime_error);
}

TEST(Faults, CorruptReplicaDrawsAtMostOnePerBlock) {
  // The corrupt-on-read model damages at most one replica of any block, so
  // DFS failover is always able to find a healthy copy; p = 1 means "every
  // block has a corrupt replica", not "every replica is corrupt".
  FaultConfig fault;
  fault.corrupt_read_probability = 1.0;
  fault.seed = 31;
  for (int file = 0; file < 20; ++file) {
    std::string name = "f" + std::to_string(file);
    for (size_t block = 0; block < 10; ++block) {
      int corrupt = 0;
      for (int ordinal = 0; ordinal < 3; ++ordinal) {
        corrupt += fault.replica_corrupt(name, block, ordinal, 3);
      }
      EXPECT_EQ(corrupt, 1) << name << " block " << block;
      // Single-replica blocks are never corrupted (nothing to fail over to).
      EXPECT_FALSE(fault.replica_corrupt(name, block, 0, 1));
    }
  }
  FaultConfig off;
  EXPECT_FALSE(off.replica_corrupt("f", 0, 0, 3));
}

TEST(Faults, CorruptReadsRecoveredInsideJobs) {
  // End to end: a wire-framed job input with a corrupt replica per block
  // still computes the failure-free answer (readers fail over silently).
  auto run = [](double prob) {
    ClusterConfig config;
    config.num_slave_nodes = 3;
    config.dfs_block_size = 2 << 10;
    config.fault.corrupt_read_probability = prob;
    config.fault.seed = 37;
    Cluster cluster(config);
    std::vector<std::string> words;
    for (int i = 0; i < 200; ++i) words.push_back("k" + std::to_string(i % 13));
    write_words(cluster, "in", words);
    JobSpec spec = wordcount_spec("in", "out");
    spec.num_reduce_tasks = 4;
    spec.wire.codec = codec::CodecId::kLz;  // framed streams end to end
    spec.spill_map_outputs = true;          // framed spills read by reducers
    auto stats = run_job(cluster, spec);
    return std::pair(stats, read_outputs(cluster, "out", 4));
  };
  auto [faulty, faulty_out] = run(0.8);
  auto [clean, clean_out] = run(0.0);
  EXPECT_EQ(faulty_out, clean_out);
  EXPECT_EQ(faulty.task_retries, 0);  // failover happens below task level
  EXPECT_EQ(faulty.shuffle_bytes, clean.shuffle_bytes);
}

// ------------------------------------------------------------ cost model

TEST(CostModel, LptMakespan) {
  EXPECT_DOUBLE_EQ(Cluster::lpt_makespan({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(Cluster::lpt_makespan({5.0}, 4), 5.0);
  EXPECT_DOUBLE_EQ(Cluster::lpt_makespan({1, 1, 1, 1}, 2), 2.0);
  EXPECT_DOUBLE_EQ(Cluster::lpt_makespan({3, 1, 1, 1}, 2), 3.0);
  EXPECT_DOUBLE_EQ(Cluster::lpt_makespan({1, 1}, 0), 2.0);  // clamped
}

TEST(CostModel, MoreNodesFasterSimTime) {
  auto sim_for = [](int nodes) {
    Cluster cluster = make_cluster(nodes, 2 << 10);
    std::vector<std::string> words;
    for (int i = 0; i < 3000; ++i) {
      words.push_back("word" + std::to_string(i % 211));
    }
    write_words(cluster, "in", words);
    return run_job(cluster, wordcount_spec("in", "out")).sim_seconds;
  };
  double small = sim_for(1);
  double big = sim_for(8);
  EXPECT_LT(big, small);
}

TEST(CostModel, SimTimeScalesWithBytes) {
  Cluster cluster = make_cluster();
  std::vector<std::string> small_words(50, "x"), big_words(5000, "y");
  write_words(cluster, "small", small_words);
  write_words(cluster, "big", big_words);
  double s = run_job(cluster, wordcount_spec("small", "o1")).sim_seconds;
  double b = run_job(cluster, wordcount_spec("big", "o2")).sim_seconds;
  EXPECT_GT(b, s);
}

// -------------------------------------------------------------- JobChain

TEST(Chain, RoundsFeedForward) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"a", "b"});
  JobChain chain(cluster, "chain");
  // Round 0: annotate values.
  JobSpec r0;
  r0.inputs = {"in"};
  r0.mapper = identity_mapper();
  r0.reducer = lambda_reducer(
      [](std::string_view key, const Values& values, ReduceContext& ctx) {
        for (std::string_view v : values) {
          ctx.emit(key, std::string(v) + "+0");
        }
      });
  chain.run_round(std::move(r0));
  // Round 1: inputs default to round 0 outputs.
  JobSpec r1;
  r1.mapper = identity_mapper();
  r1.reducer = lambda_reducer(
      [](std::string_view key, const Values& values, ReduceContext& ctx) {
        for (std::string_view v : values) {
          ctx.emit(key, std::string(v) + "+1");
        }
      });
  chain.run_round(std::move(r1));
  EXPECT_EQ(chain.completed_rounds(), 2);
  auto outs = chain.outputs_of(1);
  std::map<std::string, std::string> all;
  for (const auto& f : outs) {
    dfs::RecordReader r(&cluster.fs(), f);
    while (auto rec = r.next()) all[std::string(rec->key)] = std::string(rec->value);
  }
  EXPECT_EQ(all["0"], "a+0+1");
  EXPECT_EQ(all["1"], "b+0+1");
  JobStats totals = chain.totals();
  EXPECT_EQ(totals.reduce_output_records, 4);
}

TEST(Chain, GcRemovesOldRounds) {
  Cluster cluster = make_cluster();
  write_words(cluster, "in", {"a"});
  JobChain chain(cluster, "gc");
  for (int i = 0; i < 3; ++i) {
    JobSpec spec;
    if (i == 0) spec.inputs = {"in"};
    spec.mapper = identity_mapper();
    spec.reducer = identity_reducer();
    chain.run_round(std::move(spec));
  }
  // Round 0 outputs were GC'd when round 2 completed; rounds 1, 2 remain.
  EXPECT_FALSE(cluster.fs().exists(chain.outputs_of(0)[0]));
  EXPECT_TRUE(cluster.fs().exists(chain.outputs_of(1)[0]));
  EXPECT_TRUE(cluster.fs().exists(chain.outputs_of(2)[0]));
}

}  // namespace
}  // namespace mrflow::mr
