// Unit tests for the compact wire format: xxHash64, the LZ block codec,
// self-describing frames, the block streaming layer and prefix/delta record
// compaction. Corruption tests flip single bytes and expect DecodeError --
// the frame checksum is the storage-integrity contract for every wire
// stream the engine persists.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/serde.h"

namespace mrflow {
namespace {

using codec::BlockReader;
using codec::BlockWriter;
using codec::RecordStreamReader;
using codec::RecordStreamWriter;
using codec::WireFormat;
using serde::Bytes;
using serde::DecodeError;

TEST(XxHash, KnownVectors) {
  // Reference value from the canonical XXH64 implementation.
  EXPECT_EQ(codec::xxhash64(""), 0xEF46DB3751D8E999ull);
}

TEST(XxHash, DistinguishesInputs) {
  EXPECT_NE(codec::xxhash64("abc"), codec::xxhash64("abd"));
  EXPECT_NE(codec::xxhash64("abc"), codec::xxhash64("abc", 1));
  // Single-bit flips anywhere in a long input change the hash.
  std::string base(1000, 'x');
  uint64_t h = codec::xxhash64(base);
  for (size_t i : {size_t{0}, size_t{31}, size_t{32}, size_t{999}}) {
    std::string flipped = base;
    flipped[i] ^= 1;
    EXPECT_NE(codec::xxhash64(flipped), h) << "flip at " << i;
  }
}

std::string random_compressible(std::mt19937_64& rng, size_t n) {
  // Repeated phrases with noise: a realistic record-run texture.
  static const char* kWords[] = {"vertex", "excess", "path", "edge",
                                 "capacity", "augment"};
  std::string s;
  while (s.size() < n) {
    s += kWords[rng() % 6];
    s += static_cast<char>('0' + rng() % 10);
  }
  s.resize(n);
  return s;
}

std::string random_bytes(std::mt19937_64& rng, size_t n) {
  std::string s(n, 0);
  for (auto& c : s) c = static_cast<char>(rng());
  return s;
}

TEST(Lz, RoundTripVariety) {
  std::mt19937_64 rng(7);
  std::vector<std::string> inputs = {
      "",
      "a",
      "abcd",
      std::string(100000, 'z'),                  // maximally repetitive
      random_compressible(rng, 64 * 1024 + 17),  // text-like
      random_bytes(rng, 5000),                   // incompressible
  };
  for (size_t run = 0; run < 20; ++run) {
    inputs.push_back(random_compressible(rng, rng() % 3000));
  }
  for (const auto& raw : inputs) {
    Bytes wire;
    codec::lz_compress(raw, wire);
    Bytes back;
    codec::lz_decompress(wire, raw.size(), back);
    ASSERT_EQ(back, raw) << "size " << raw.size();
  }
}

TEST(Lz, CompressesRepetitiveData) {
  std::string raw(64 * 1024, 'q');
  Bytes wire;
  codec::lz_compress(raw, wire);
  EXPECT_LT(wire.size(), raw.size() / 20);
}

TEST(Lz, DecompressRejectsWrongLength) {
  std::string raw = "hello hello hello hello hello";
  Bytes wire;
  codec::lz_compress(raw, wire);
  Bytes out;
  EXPECT_THROW(codec::lz_decompress(wire, raw.size() + 1, out), DecodeError);
  out.clear();
  EXPECT_THROW(codec::lz_decompress(wire, raw.size() - 1, out), DecodeError);
}

TEST(Frame, RoundTripBothCodecs) {
  std::mt19937_64 rng(11);
  std::string raw = random_compressible(rng, 10000);
  for (auto id : {codec::CodecId::kNone, codec::CodecId::kLz}) {
    Bytes wire;
    codec::append_frame(wire, raw, id);
    if (id == codec::CodecId::kLz) {
      EXPECT_LT(wire.size(), raw.size());
    }
    BlockReader reader{std::string_view(wire)};
    EXPECT_EQ(reader.next_block(), raw);
    EXPECT_TRUE(reader.next_block().empty());
    EXPECT_EQ(reader.raw_bytes(), raw.size());
    EXPECT_EQ(reader.wire_bytes(), wire.size());
  }
}

TEST(Frame, IncompressiblePayloadFallsBackToNone) {
  std::mt19937_64 rng(13);
  std::string raw = random_bytes(rng, 4096);
  Bytes wire;
  codec::append_frame(wire, raw, codec::CodecId::kLz);
  // Fallback stores the payload verbatim: frame overhead only.
  EXPECT_LE(wire.size(), raw.size() + 32);
  EXPECT_EQ(static_cast<codec::CodecId>(wire[0]), codec::CodecId::kNone);
  BlockReader reader{std::string_view(wire)};
  EXPECT_EQ(reader.next_block(), raw);
}

// Satellite: flipping any single byte of a compressed frame surfaces
// DecodeError -- never garbage payload bytes.
TEST(Frame, EveryByteFlipIsDetected) {
  std::mt19937_64 rng(17);
  std::string raw = random_compressible(rng, 2000);
  Bytes wire;
  codec::append_frame(wire, raw, codec::CodecId::kLz);
  ASSERT_EQ(static_cast<codec::CodecId>(wire[0]), codec::CodecId::kLz);
  size_t thrown = 0;
  for (size_t i = 0; i < wire.size(); ++i) {
    Bytes bad = wire;
    bad[i] ^= 0x40;
    BlockReader reader{std::string_view(bad)};
    try {
      std::string_view block = reader.next_block();
      // Rarely a flipped LZ match offset points at an identical copy of
      // the same bytes; the stream still decodes to the exact payload,
      // which is fine. What must never happen is a silently *wrong* block.
      EXPECT_EQ(block, raw) << "silent corruption from flip at byte " << i;
    } catch (const DecodeError&) {
      ++thrown;
    }
  }
  EXPECT_GT(thrown, wire.size() * 9 / 10) << "checksum should catch ~all flips";
}

TEST(Frame, TruncationIsDetected) {
  std::string raw = "the quick brown fox jumps over the lazy dog";
  Bytes wire;
  codec::append_frame(wire, raw, codec::CodecId::kNone);
  for (size_t keep = 0; keep < wire.size(); ++keep) {
    if (keep == 0) continue;  // empty stream is a clean EOF, not an error
    BlockReader reader{std::string_view(wire).substr(0, keep)};
    EXPECT_THROW(reader.next_block(), DecodeError) << "truncated to " << keep;
  }
}

TEST(BlockWriterReader, StreamsAcrossChunkedSource) {
  std::mt19937_64 rng(23);
  WireFormat fmt;
  fmt.codec = codec::CodecId::kLz;
  fmt.block_bytes = 512;  // many frames
  Bytes wire;
  Bytes expect;
  BlockWriter writer([&wire](std::string_view f) { wire.append(f); }, fmt);
  for (int i = 0; i < 200; ++i) {
    std::string atom = random_compressible(rng, rng() % 300);
    expect += atom;
    writer.append(atom);
  }
  writer.close();
  EXPECT_EQ(writer.raw_bytes(), expect.size());
  EXPECT_EQ(writer.wire_bytes(), wire.size());
  EXPECT_LT(wire.size(), expect.size());

  // Feed the reader in awkward chunk sizes (1..97 bytes).
  size_t pos = 0;
  size_t chunk = 1;
  BlockReader reader([&](size_t) -> std::string_view {
    if (pos >= wire.size()) return {};
    size_t n = std::min(chunk, wire.size() - pos);
    chunk = chunk % 97 + 7;
    std::string_view out = std::string_view(wire).substr(pos, n);
    pos += n;
    return out;
  });
  Bytes got;
  while (true) {
    std::string_view block = reader.next_block();
    if (block.empty()) break;
    got.append(block);
  }
  EXPECT_EQ(got, expect);
}

struct Rec {
  std::string key;
  std::string value;
};

std::vector<Rec> sorted_varint_records(std::mt19937_64& rng, size_t n) {
  std::vector<Rec> recs;
  uint64_t id = rng() % 5;
  for (size_t i = 0; i < n; ++i) {
    serde::ByteWriter w;
    w.put_varint(id);
    recs.push_back({w.take(), random_compressible(rng, rng() % 40)});
    if (rng() % 3 != 0) id += rng() % 50;  // duplicates allowed
  }
  return recs;
}

std::vector<Rec> sorted_string_records(std::mt19937_64& rng, size_t n) {
  std::vector<Rec> recs;
  for (size_t i = 0; i < n; ++i) {
    std::string key = "prefix/shared/" + std::to_string(1000000 + rng() % 100000);
    recs.push_back({key, random_compressible(rng, rng() % 40)});
  }
  std::sort(recs.begin(), recs.end(),
            [](const Rec& a, const Rec& b) { return a.key < b.key; });
  return recs;
}

void round_trip_records(const std::vector<Rec>& recs, WireFormat fmt) {
  Bytes wire;
  RecordStreamWriter writer([&wire](std::string_view f) { wire.append(f); },
                            fmt);
  uint64_t raw = 0;
  for (const auto& r : recs) {
    writer.write(r.key, r.value);
    raw += codec::framed_record_size(r.key.size(), r.value.size());
  }
  writer.close();
  EXPECT_EQ(writer.records(), recs.size());
  EXPECT_EQ(writer.raw_bytes(), raw);
  EXPECT_EQ(writer.wire_bytes(), wire.size());

  RecordStreamReader reader{std::string_view(wire)};
  for (size_t i = 0; i < recs.size(); ++i) {
    ASSERT_TRUE(reader.next()) << "record " << i;
    EXPECT_EQ(reader.key(), recs[i].key) << "record " << i;
    EXPECT_EQ(reader.value(), recs[i].value) << "record " << i;
  }
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.records(), recs.size());
  EXPECT_EQ(reader.raw_bytes(), raw);
}

TEST(RecordStream, RoundTripAllFormats) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 4; ++trial) {
    auto vrecs = sorted_varint_records(rng, 500);
    auto srecs = sorted_string_records(rng, 500);
    for (auto codec_id : {codec::CodecId::kNone, codec::CodecId::kLz}) {
      for (bool compact : {false, true}) {
        WireFormat fmt;
        fmt.codec = codec_id;
        fmt.compact_keys = compact;
        fmt.block_bytes = 1u << (9 + trial);  // vary frame sizes
        round_trip_records(vrecs, fmt);
        round_trip_records(srecs, fmt);
      }
    }
  }
}

TEST(RecordStream, CompactionShrinksSortedRuns) {
  std::mt19937_64 rng(37);
  auto recs = sorted_varint_records(rng, 4000);
  WireFormat plain;  // kNone, no compaction: raw + frame headers
  WireFormat compact;
  compact.codec = codec::CodecId::kLz;
  compact.compact_keys = true;
  auto wire_size = [&](WireFormat fmt) {
    Bytes wire;
    RecordStreamWriter w([&wire](std::string_view f) { wire.append(f); }, fmt);
    for (const auto& r : recs) w.write(r.key, r.value);
    w.close();
    return wire.size();
  };
  size_t plain_size = wire_size(plain);
  size_t compact_size = wire_size(compact);
  EXPECT_LT(compact_size, plain_size * 7 / 10)
      << "compaction+lz should cut >30% on a sorted vertex-id run";
}

TEST(RecordStream, EmptyKeysAndValues) {
  std::vector<Rec> recs = {{"", ""}, {"", "v"}, {"a", ""}, {"a", ""}, {"b", "x"}};
  for (bool compact : {false, true}) {
    WireFormat fmt;
    fmt.codec = codec::CodecId::kLz;
    fmt.compact_keys = compact;
    round_trip_records(recs, fmt);
  }
}

TEST(RecordStream, DeltaSurvivesNonMonotoneAndHugeIds) {
  // Deltas are signed and wrap mod 2^64; any id sequence round-trips.
  std::vector<uint64_t> ids = {5, 3, 0, ~0ull, 1, 1ull << 63, 7};
  std::vector<Rec> recs;
  for (uint64_t id : ids) {
    serde::ByteWriter w;
    w.put_varint(id);
    recs.push_back({w.take(), "v"});
  }
  WireFormat fmt;
  fmt.compact_keys = true;
  round_trip_records(recs, fmt);
}

TEST(RecordStream, CorruptFrameSurfacesMidStream) {
  std::mt19937_64 rng(41);
  auto recs = sorted_varint_records(rng, 2000);
  WireFormat fmt;
  fmt.codec = codec::CodecId::kLz;
  fmt.compact_keys = true;
  fmt.block_bytes = 512;
  Bytes wire;
  RecordStreamWriter writer([&wire](std::string_view f) { wire.append(f); },
                            fmt);
  for (const auto& r : recs) writer.write(r.key, r.value);
  writer.close();

  Bytes bad = wire;
  bad[bad.size() / 2] ^= 0x10;  // flip a byte past the first frame
  RecordStreamReader reader{std::string_view(bad)};
  bool threw = false;
  size_t decoded = 0;
  try {
    while (reader.next()) ++decoded;
  } catch (const DecodeError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_GT(decoded, 0u) << "frames before the flip should still decode";
}

TEST(RecordStream, FramedConversionsAreInverse) {
  std::mt19937_64 rng(43);
  auto recs = sorted_varint_records(rng, 800);
  Bytes framed;
  serde::ByteWriter w(&framed);
  for (const auto& r : recs) {
    w.put_bytes(r.key);
    w.put_bytes(r.value);
  }
  WireFormat fmt;
  fmt.codec = codec::CodecId::kLz;
  fmt.compact_keys = true;
  Bytes wire;
  uint64_t n = codec::encode_framed_to_stream(framed, fmt, wire);
  EXPECT_EQ(n, wire.size());
  Bytes back;
  codec::decode_stream_to_framed(wire, back);
  EXPECT_EQ(back, framed);
}

TEST(CanonicalVarint, AcceptsOnlyShortestEncodings) {
  uint64_t v = 0;
  for (uint64_t x : {0ull, 1ull, 127ull, 128ull, 300ull, ~0ull}) {
    serde::ByteWriter w;
    w.put_varint(x);
    Bytes enc = w.take();
    EXPECT_TRUE(codec::canonical_varint(enc, &v));
    EXPECT_EQ(v, x);
    // Overlong form of the same value is rejected.
    if (enc.size() < 10) {
      Bytes longer = enc;
      longer.back() = static_cast<char>(longer.back() | 0x80);
      longer.push_back(0);
      EXPECT_FALSE(codec::canonical_varint(longer, &v));
    }
  }
  EXPECT_FALSE(codec::canonical_varint("", &v));
  EXPECT_FALSE(codec::canonical_varint("\x80", &v));          // truncated
  EXPECT_FALSE(codec::canonical_varint("not a varint", &v));
}

TEST(ParseCodec, Names) {
  EXPECT_EQ(codec::parse_codec("none"), codec::CodecId::kNone);
  EXPECT_EQ(codec::parse_codec("lz"), codec::CodecId::kLz);
  EXPECT_FALSE(codec::parse_codec("snappy").has_value());
  EXPECT_STREQ(codec::codec_name(codec::CodecId::kLz), "lz");
}

}  // namespace
}  // namespace mrflow
