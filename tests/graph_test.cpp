// Unit and property tests for the graph library: core type, generators,
// BFS/diameter, super terminals, edge-list I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "graph/bfs.h"
#include "graph/edgelist_io.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace mrflow::graph {
namespace {

// ------------------------------------------------------------------ core

TEST(GraphCore, AddEdgeAndAdjacency) {
  Graph g(3);
  uint64_t e0 = g.add_edge(0, 1, 5, 2);
  uint64_t e1 = g.add_undirected(1, 2, 7);
  g.finalize();
  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edge_pairs(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  auto n1 = g.neighbors(1);
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0].to, 0u);
  EXPECT_FALSE(n1[0].forward);  // 1 is the 'b' endpoint of pair 0
  EXPECT_EQ(n1[1].to, 2u);
  EXPECT_TRUE(n1[1].forward);
}

TEST(GraphCore, DirectedEdgeCount) {
  Graph g(3);
  g.add_edge(0, 1, 5, 0);   // one direction
  g.add_edge(1, 2, 3, 3);   // both
  g.add_edge(0, 2, 0, 0);   // neither
  EXPECT_EQ(g.num_directed_edges(), 3u);
}

TEST(GraphCore, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1, 1, 1), std::invalid_argument);
}

TEST(GraphCore, NegativeCapacityRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, -1, 0), std::invalid_argument);
}

TEST(GraphCore, EnsureVertexGrows) {
  Graph g;
  g.add_edge(5, 9, 1, 1);
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(GraphCore, UseBeforeFinalizeThrows) {
  Graph g(2);
  g.add_edge(0, 1, 1, 1);
  EXPECT_THROW(g.degree(0), std::logic_error);
  g.finalize();
  EXPECT_EQ(g.degree(0), 1u);
  g.add_edge(0, 1, 2, 2);  // invalidates
  EXPECT_THROW(g.neighbors(0), std::logic_error);
}

TEST(GraphCore, OutCapacity) {
  Graph g(3);
  g.add_edge(0, 1, 5, 2);
  g.add_edge(2, 0, 7, 3);  // 0 is 'b': out capacity is cap_ba = 3
  g.finalize();
  EXPECT_EQ(g.out_capacity(0), 8);
  EXPECT_EQ(g.out_capacity(1), 2);
}

TEST(GraphCore, OutCapacityClampsAtInfinity) {
  Graph g(3);
  g.add_edge(0, 1, kInfiniteCap, 0);
  g.add_edge(0, 2, kInfiniteCap, 0);
  g.finalize();
  EXPECT_EQ(g.out_capacity(0), kInfiniteCap);
}

// ------------------------------------------------------------- generators

size_t sum_degrees(const Graph& g) {
  size_t s = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) s += g.degree(v);
  return s;
}

void expect_simple(const Graph& g) {
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& e : g.edges()) {
    EXPECT_NE(e.a, e.b);
    auto key = std::minmax(e.a, e.b);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second)
        << "duplicate edge " << e.a << "-" << e.b;
  }
}

class WattsStrogatzSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(WattsStrogatzSweep, StructuralProperties) {
  auto [n, k, beta] = GetParam();
  Graph g = watts_strogatz(n, k, beta, /*seed=*/99);
  EXPECT_EQ(g.num_vertices(), static_cast<VertexId>(n));
  // Rewiring with dedup can drop a few edges; at least 90% must survive.
  EXPECT_GE(g.num_edge_pairs(), static_cast<size_t>(n) * k / 2 * 9 / 10);
  EXPECT_LE(g.num_edge_pairs(), static_cast<size_t>(n) * k / 2);
  expect_simple(g);
  EXPECT_EQ(sum_degrees(g), 2 * g.num_edge_pairs());
}

INSTANTIATE_TEST_SUITE_P(
    Params, WattsStrogatzSweep,
    ::testing::Values(std::tuple{50, 4, 0.0}, std::tuple{50, 4, 0.3},
                      std::tuple{200, 6, 0.1}, std::tuple{500, 8, 1.0}));

TEST(WattsStrogatz, Beta0IsRingLattice) {
  Graph g = watts_strogatz(20, 4, 0.0, 1);
  EXPECT_EQ(g.num_edge_pairs(), 40u);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(WattsStrogatz, SmallWorldDiameter) {
  // Rewired ring has much smaller diameter than the pure lattice.
  Graph lattice = watts_strogatz(400, 4, 0.0, 5);
  Graph sw = watts_strogatz(400, 4, 0.3, 5);
  uint32_t d_lattice = estimate_diameter(lattice, 4, 1);
  uint32_t d_sw = estimate_diameter(sw, 4, 1);
  EXPECT_GT(d_lattice, 2 * d_sw);
}

TEST(WattsStrogatz, BadArgs) {
  EXPECT_THROW(watts_strogatz(2, 2, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 4, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 10, 0.1, 1), std::invalid_argument);
}

class BarabasiAlbertSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BarabasiAlbertSweep, StructuralProperties) {
  auto [n, m] = GetParam();
  Graph g = barabasi_albert(n, m, /*seed=*/3);
  EXPECT_EQ(g.num_vertices(), static_cast<VertexId>(n));
  size_t expected = static_cast<size_t>(m) * (m + 1) / 2 +
                    static_cast<size_t>(n - m - 1) * m;
  EXPECT_EQ(g.num_edge_pairs(), expected);
  expect_simple(g);
  EXPECT_TRUE(is_connected(g));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), static_cast<size_t>(std::min(m, 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Params, BarabasiAlbertSweep,
                         ::testing::Values(std::tuple{100, 1},
                                           std::tuple{100, 3},
                                           std::tuple{500, 5}));

TEST(BarabasiAlbert, PowerLawHubExists) {
  Graph g = barabasi_albert(2000, 2, 11);
  size_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  // Preferential attachment produces hubs far above the mean degree (4).
  EXPECT_GT(max_deg, 30u);
}

TEST(Rmat, SizeAndSimplicity) {
  Graph g = rmat(/*scale=*/8, /*edge_factor=*/8, /*seed=*/21);
  EXPECT_EQ(g.num_vertices(), 256u);
  EXPECT_EQ(g.num_edge_pairs(), 2048u);
  expect_simple(g);
}

TEST(Rmat, SkewProducesHubs) {
  Graph skew = rmat(9, 8, 4, 0.57, 0.19, 0.19);
  size_t max_deg = 0;
  for (VertexId v = 0; v < skew.num_vertices(); ++v) {
    max_deg = std::max(max_deg, skew.degree(v));
  }
  EXPECT_GT(max_deg, 40u);  // mean degree is 16
}

TEST(ErdosRenyi, ExactEdgeCount) {
  Graph g = erdos_renyi(100, 300, 17);
  EXPECT_EQ(g.num_edge_pairs(), 300u);
  expect_simple(g);
  EXPECT_THROW(erdos_renyi(10, 46, 1), std::invalid_argument);
}

TEST(Grid, StructureAndDiameter) {
  Graph g = grid(5, 7);
  EXPECT_EQ(g.num_vertices(), 35u);
  EXPECT_EQ(g.num_edge_pairs(), 5u * 6 + 4u * 7);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(double_sweep_lower_bound(g, 0), 10u);  // corner to corner
}

TEST(FacebookLike, LowDiameterAndHubs) {
  Graph g = facebook_like(3000, 10, 31);
  EXPECT_TRUE(is_connected(g));
  EXPECT_LE(estimate_diameter(g, 4, 2), 8u);
  EXPECT_GE(g.num_edge_pairs(), 3000u * 5);
}

TEST(FacebookLadder, ScalesMonotonically) {
  auto ladder = facebook_ladder(1.0);
  ASSERT_EQ(ladder.size(), 6u);
  EXPECT_EQ(ladder[0].name, "FB1'");
  for (size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].vertices, ladder[i - 1].vertices);
    EXPECT_GE(ladder[i].avg_degree, ladder[i - 1].avg_degree);
  }
  auto tiny = facebook_ladder(0.01);
  EXPECT_LT(tiny[5].vertices, ladder[5].vertices);
  EXPECT_THROW(facebook_ladder(0), std::invalid_argument);
}

TEST(Generators, Deterministic) {
  Graph a = barabasi_albert(200, 3, 77);
  Graph b = barabasi_albert(200, 3, 77);
  ASSERT_EQ(a.num_edge_pairs(), b.num_edge_pairs());
  for (size_t i = 0; i < a.num_edge_pairs(); ++i) {
    EXPECT_EQ(a.edge(i).a, b.edge(i).a);
    EXPECT_EQ(a.edge(i).b, b.edge(i).b);
  }
  Graph c = barabasi_albert(200, 3, 78);
  bool identical = a.num_edge_pairs() == c.num_edge_pairs();
  if (identical) {
    identical = false;
    for (size_t i = 0; i < a.num_edge_pairs(); ++i) {
      if (a.edge(i).a != c.edge(i).a || a.edge(i).b != c.edge(i).b) break;
      if (i + 1 == a.num_edge_pairs()) identical = true;
    }
  }
  EXPECT_FALSE(identical);
}

// -------------------------------------------------------------------- bfs

TEST(Bfs, DistancesOnPath) {
  Graph g(4);
  g.add_undirected(0, 1);
  g.add_undirected(1, 2);
  g.add_undirected(2, 3);
  g.finalize();
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(Bfs, RespectsDirection) {
  Graph g(3);
  g.add_edge(0, 1, 1, 0);  // only 0 -> 1
  g.add_edge(2, 1, 1, 0);  // only 2 -> 1
  g.finalize();
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Bfs, ZeroCapacityEdgeIgnored) {
  Graph g(2);
  g.add_edge(0, 1, 0, 0);
  g.finalize();
  EXPECT_EQ(bfs_distances(g, 0)[1], kUnreachable);
}

TEST(Bfs, Connectivity) {
  Graph g(4);
  g.add_undirected(0, 1);
  g.add_undirected(2, 3);
  g.finalize();
  EXPECT_FALSE(is_connected(g));
  g.add_undirected(1, 2);
  g.finalize();
  EXPECT_TRUE(is_connected(g));
}

TEST(Bfs, DiameterEstimateBounds) {
  Graph g = watts_strogatz(300, 6, 0.2, 1);
  uint32_t est = estimate_diameter(g, 6, 2);
  // Double-sweep lower bound: must be at least the eccentricity seen from
  // any single BFS and at most n.
  EXPECT_GE(est, 2u);
  EXPECT_LT(est, 300u);
}

// --------------------------------------------------------- super terminals

TEST(SuperTerminals, AttachesWPlusW) {
  Graph g = barabasi_albert(200, 3, 5);
  size_t pairs_before = g.num_edge_pairs();
  FlowProblem p = attach_super_terminals(std::move(g), 8, 3, 7);
  EXPECT_EQ(p.graph.num_vertices(), 202u);
  EXPECT_EQ(p.source, 200u);
  EXPECT_EQ(p.sink, 201u);
  EXPECT_EQ(p.graph.num_edge_pairs(), pairs_before + 16);
  EXPECT_EQ(p.graph.degree(p.source), 8u);
  EXPECT_EQ(p.graph.degree(p.sink), 8u);
  // Terminal attachment capacities are infinite, one-directional.
  for (const auto& arc : p.graph.neighbors(p.source)) {
    const auto& e = p.graph.edge(arc.pair_index);
    EXPECT_EQ(e.cap_ab, kInfiniteCap);
    EXPECT_EQ(e.cap_ba, 0);
  }
}

TEST(SuperTerminals, SourceAndSinkSetsDisjoint) {
  Graph g = barabasi_albert(100, 3, 5);
  FlowProblem p = attach_super_terminals(std::move(g), 10, 3, 9);
  std::set<VertexId> src_side, sink_side;
  for (const auto& arc : p.graph.neighbors(p.source)) src_side.insert(arc.to);
  for (const auto& arc : p.graph.neighbors(p.sink)) sink_side.insert(arc.to);
  for (VertexId v : src_side) EXPECT_EQ(sink_side.count(v), 0u);
}

TEST(SuperTerminals, MinDegreeRespected) {
  Graph g = barabasi_albert(100, 2, 5);
  FlowProblem p = attach_super_terminals(std::move(g), 5, 4, 3);
  for (const auto& arc : p.graph.neighbors(p.source)) {
    // Original degree (minus the new terminal edge).
    EXPECT_GE(p.graph.degree(arc.to) - 1, 4u);
  }
}

TEST(SuperTerminals, NotEnoughCandidatesThrows) {
  Graph g = grid(3, 3);  // max degree 4
  EXPECT_THROW(attach_super_terminals(std::move(g), 5, 4, 1),
               std::invalid_argument);
}

// ------------------------------------------------------------ edgelist io

TEST(EdgelistIo, RoundTrip) {
  Graph g(4);
  g.add_edge(0, 1, 5, 2);
  g.add_edge(1, 3, 7, 7);
  g.finalize();
  std::ostringstream os;
  write_edgelist(g, os);
  std::istringstream is(os.str());
  Graph h = read_edgelist(is);
  ASSERT_EQ(h.num_edge_pairs(), 2u);
  EXPECT_EQ(h.edge(0).cap_ab, 5);
  EXPECT_EQ(h.edge(0).cap_ba, 2);
  EXPECT_EQ(h.edge(1).cap_ab, 7);
}

TEST(EdgelistIo, DefaultsAndComments) {
  std::istringstream is(
      "# a comment\n"
      "0 1\n"         // default caps 1/1
      "1 2 5\n"       // symmetric 5/5
      "\n"
      "2 3 4 0  # trailing comment\n");
  Graph g = read_edgelist(is);
  ASSERT_EQ(g.num_edge_pairs(), 3u);
  EXPECT_EQ(g.edge(0).cap_ab, 1);
  EXPECT_EQ(g.edge(0).cap_ba, 1);
  EXPECT_EQ(g.edge(1).cap_ba, 5);
  EXPECT_EQ(g.edge(2).cap_ba, 0);
}

TEST(EdgelistIo, MalformedLineThrows) {
  std::istringstream is("0\n");
  EXPECT_THROW(read_edgelist(is), std::invalid_argument);
}

}  // namespace
}  // namespace mrflow::graph
