// Portfolio selector tests: decisions pinned on synthetic statistics
// (the pure choose_from_stats path), measured statistics on generated
// graphs, and the decision JSON surface the CLI and round reports embed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "flow/max_flow.h"
#include "flow/portfolio.h"
#include "graph/generators.h"
#include "mapreduce/cluster.h"
#include "service/flow_service.h"

namespace mrflow::flow {
namespace {

GraphStats synthetic(uint64_t vertices, uint32_t diameter, double avg_degree,
                     graph::Capacity flow_hint) {
  GraphStats s;
  s.vertices = vertices;
  s.directed_edges = static_cast<uint64_t>(vertices * avg_degree);
  s.diameter_estimate = diameter;
  s.avg_degree = avg_degree;
  s.degree_skew = 4.0;
  s.max_finite_cap = 1;
  s.flow_hint = flow_hint;
  return s;
}

// ----------------------------------------------------- pinned decisions

TEST(PortfolioRules, TinyGoesSequential) {
  EXPECT_EQ(choose_from_stats(synthetic(32, 3, 4.0, 8)),
            PortfolioBackend::kSequentialDinic);
  EXPECT_EQ(choose_from_stats(synthetic(64, 3, 4.0, 8)),
            PortfolioBackend::kSequentialDinic);
  EXPECT_NE(choose_from_stats(synthetic(65, 3, 4.0, 8)),
            PortfolioBackend::kSequentialDinic);
}

TEST(PortfolioRules, SmallWorldGoesBidirectionalFf) {
  // n = 10'000 -> auto diameter cap 2*14+4 = 32; a small-world diameter
  // estimate of ~8 with a modest flow bound stays with FFMR.
  EXPECT_EQ(choose_from_stats(synthetic(10'000, 8, 6.0, 40)),
            PortfolioBackend::kBidirectionalFf);
}

TEST(PortfolioRules, HighDiameterGoesPushRelabel) {
  // Same size, lattice-like diameter estimate: way past the small-world
  // envelope -> FF-PR.
  EXPECT_EQ(choose_from_stats(synthetic(10'000, 200, 4.0, 4)),
            PortfolioBackend::kPushRelabel);
}

TEST(PortfolioRules, HighFlowBoundGoesPushRelabel) {
  // Small-world diameter but a flow bound far above what path-based FF
  // drains per round-phase: 64 (cap) * 8 (diam) * 6 (deg) = 3072 < hint.
  EXPECT_EQ(choose_from_stats(synthetic(10'000, 8, 6.0, 1'000'000)),
            PortfolioBackend::kPushRelabel);
}

TEST(PortfolioRules, ThresholdOverridesRespected) {
  PortfolioThresholds t;
  t.sequential_cutoff_vertices = 0;
  t.diameter_cap = 1'000'000;
  t.flow_per_diameter_cap = 1e18;
  // Everything forced into the FFMR bucket.
  EXPECT_EQ(choose_from_stats(synthetic(32, 500, 4.0, 1'000'000), t),
            PortfolioBackend::kBidirectionalFf);
  t.diameter_cap = 1;
  EXPECT_EQ(choose_from_stats(synthetic(32, 500, 4.0, 8), t),
            PortfolioBackend::kPushRelabel);
}

// --------------------------------------------------- measured statistics

TEST(PortfolioStats, MeasuresSmallWorldShape) {
  auto p = graph::attach_super_terminals(
      graph::watts_strogatz(400, 4, 0.2, 7), 3, 2, 8);
  GraphStats s = compute_graph_stats(p.graph, p.source, p.sink);
  EXPECT_EQ(s.vertices, p.graph.num_vertices());
  EXPECT_GT(s.avg_degree, 2.0);
  // Small world: estimate well under the vertex count.
  EXPECT_LT(s.diameter_estimate, 40u);
  EXPECT_GT(s.diameter_estimate, 2u);
  // Super-terminal arcs are infinite and must not leak into
  // max_finite_cap.
  EXPECT_EQ(s.max_finite_cap, 1);
  EXPECT_EQ(choose_from_stats(s), PortfolioBackend::kBidirectionalFf);
}

TEST(PortfolioStats, MeasuresLatticeShape) {
  auto p = graph::lattice_flow_problem(4, 120, 1);
  GraphStats s = compute_graph_stats(p.graph, p.source, p.sink);
  EXPECT_GE(s.diameter_estimate, 100u);
  EXPECT_EQ(choose_from_stats(s), PortfolioBackend::kPushRelabel);
}

TEST(PortfolioStats, TinyMeasuredInstance) {
  graph::Graph g = graph::grid(4, 4);
  GraphStats s = compute_graph_stats(g, 0, 15);
  EXPECT_EQ(choose_from_stats(s), PortfolioBackend::kSequentialDinic);
}

// ------------------------------------------------------------- decision

TEST(PortfolioDecisionTest, JsonCarriesBackendAndStats) {
  auto p = graph::lattice_flow_problem(4, 120, 1);
  PortfolioDecision d = choose_backend(p.graph, p.source, p.sink);
  EXPECT_EQ(d.backend, PortfolioBackend::kPushRelabel);
  const std::string json = d.to_json();
  EXPECT_NE(json.find("\"backend\":\"ffpr\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"diameter_estimate\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"flow_hint\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reason\":"), std::string::npos) << json;
  EXPECT_FALSE(d.reason.empty());
}

// ----------------------------------------------------------- end to end

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The serve-mode auto surface: Backend::kAuto resolves per query, the
// chosen backend is recorded on the answer and in the service report.
TEST(PortfolioEndToEnd, AutoRoutesHighDiameterToFfprAndRecordsIt) {
  auto p = graph::lattice_flow_problem(3, 30, 1);
  mr::ClusterConfig config;
  config.num_slave_nodes = 2;
  mr::Cluster cluster(config);

  const std::string report = ::testing::TempDir() + "/portfolio_auto_hd." +
                             std::to_string(::getpid()) + ".jsonl";
  service::ServiceOptions opt;
  opt.backend = service::Backend::kAuto;
  opt.round_report = report;
  service::FlowService svc(&cluster, p.graph, opt);
  auto r = svc.query(p.source, p.sink);
  EXPECT_EQ(r.backend, "ffpr");
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.value, max_flow_dinic(p.graph, p.source, p.sink).value);
  const std::string text = slurp(report);
  EXPECT_NE(text.find("\"backend\":\"ffpr\""), std::string::npos) << text;
  std::remove(report.c_str());
}

TEST(PortfolioEndToEnd, AutoRoutesSmallWorldToFfmrAndRecordsIt) {
  graph::Graph g = graph::watts_strogatz(120, 4, 0.2, 11);
  g.finalize();
  mr::ClusterConfig config;
  config.num_slave_nodes = 2;
  mr::Cluster cluster(config);

  const std::string report = ::testing::TempDir() + "/portfolio_auto_sw." +
                             std::to_string(::getpid()) + ".jsonl";
  service::ServiceOptions opt;
  opt.backend = service::Backend::kAuto;
  opt.round_report = report;
  service::FlowService svc(&cluster, g, opt);
  auto r = svc.query(0, 60);
  EXPECT_EQ(r.backend, "ffmr");
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.value, max_flow_dinic(g, 0, 60).value);
  const std::string text = slurp(report);
  EXPECT_NE(text.find("\"backend\":\"ffmr\""), std::string::npos) << text;
  std::remove(report.c_str());
}

TEST(PortfolioDecisionTest, NamesRoundTrip) {
  EXPECT_STREQ(portfolio_backend_name(PortfolioBackend::kSequentialDinic),
               "dinic");
  EXPECT_STREQ(portfolio_backend_name(PortfolioBackend::kBidirectionalFf),
               "ffmr");
  EXPECT_STREQ(portfolio_backend_name(PortfolioBackend::kPushRelabel), "ffpr");
}

}  // namespace
}  // namespace mrflow::flow
