file(REMOVE_RECURSE
  "CMakeFiles/wordcount_mr.dir/wordcount_mr.cpp.o"
  "CMakeFiles/wordcount_mr.dir/wordcount_mr.cpp.o.d"
  "wordcount_mr"
  "wordcount_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
