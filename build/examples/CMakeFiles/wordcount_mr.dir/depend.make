# Empty dependencies file for wordcount_mr.
# This may be replaced when dependencies are built.
