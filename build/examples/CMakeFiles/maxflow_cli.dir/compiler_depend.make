# Empty compiler generated dependencies file for maxflow_cli.
# This may be replaced when dependencies are built.
