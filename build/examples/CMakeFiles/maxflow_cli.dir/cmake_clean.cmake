file(REMOVE_RECURSE
  "CMakeFiles/maxflow_cli.dir/maxflow_cli.cpp.o"
  "CMakeFiles/maxflow_cli.dir/maxflow_cli.cpp.o.d"
  "maxflow_cli"
  "maxflow_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxflow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
