# Empty dependencies file for sybil_defense.
# This may be replaced when dependencies are built.
