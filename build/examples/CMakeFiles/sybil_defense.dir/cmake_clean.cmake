file(REMOVE_RECURSE
  "CMakeFiles/sybil_defense.dir/sybil_defense.cpp.o"
  "CMakeFiles/sybil_defense.dir/sybil_defense.cpp.o.d"
  "sybil_defense"
  "sybil_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sybil_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
