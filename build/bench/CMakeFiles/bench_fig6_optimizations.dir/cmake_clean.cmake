file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_optimizations.dir/bench_fig6_optimizations.cpp.o"
  "CMakeFiles/bench_fig6_optimizations.dir/bench_fig6_optimizations.cpp.o.d"
  "bench_fig6_optimizations"
  "bench_fig6_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
