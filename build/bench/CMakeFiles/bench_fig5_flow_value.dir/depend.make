# Empty dependencies file for bench_fig5_flow_value.
# This may be replaced when dependencies are built.
