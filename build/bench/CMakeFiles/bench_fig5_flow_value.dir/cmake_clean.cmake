file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_flow_value.dir/bench_fig5_flow_value.cpp.o"
  "CMakeFiles/bench_fig5_flow_value.dir/bench_fig5_flow_value.cpp.o.d"
  "bench_fig5_flow_value"
  "bench_fig5_flow_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_flow_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
