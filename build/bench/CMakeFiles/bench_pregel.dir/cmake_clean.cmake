file(REMOVE_RECURSE
  "CMakeFiles/bench_pregel.dir/bench_pregel.cpp.o"
  "CMakeFiles/bench_pregel.dir/bench_pregel.cpp.o.d"
  "bench_pregel"
  "bench_pregel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pregel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
