# Empty compiler generated dependencies file for bench_pregel.
# This may be replaced when dependencies are built.
