# Empty dependencies file for bench_graphs_table.
# This may be replaced when dependencies are built.
