file(REMOVE_RECURSE
  "CMakeFiles/bench_graphs_table.dir/bench_graphs_table.cpp.o"
  "CMakeFiles/bench_graphs_table.dir/bench_graphs_table.cpp.o.d"
  "bench_graphs_table"
  "bench_graphs_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graphs_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
