file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rounds.dir/bench_table1_rounds.cpp.o"
  "CMakeFiles/bench_table1_rounds.dir/bench_table1_rounds.cpp.o.d"
  "bench_table1_rounds"
  "bench_table1_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
