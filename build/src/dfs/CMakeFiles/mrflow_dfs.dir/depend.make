# Empty dependencies file for mrflow_dfs.
# This may be replaced when dependencies are built.
