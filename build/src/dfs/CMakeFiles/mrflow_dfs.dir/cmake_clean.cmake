file(REMOVE_RECURSE
  "CMakeFiles/mrflow_dfs.dir/dfs.cpp.o"
  "CMakeFiles/mrflow_dfs.dir/dfs.cpp.o.d"
  "CMakeFiles/mrflow_dfs.dir/record_io.cpp.o"
  "CMakeFiles/mrflow_dfs.dir/record_io.cpp.o.d"
  "libmrflow_dfs.a"
  "libmrflow_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrflow_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
