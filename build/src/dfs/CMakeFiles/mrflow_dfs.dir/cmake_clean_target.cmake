file(REMOVE_RECURSE
  "libmrflow_dfs.a"
)
