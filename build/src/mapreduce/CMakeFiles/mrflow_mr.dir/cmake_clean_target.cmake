file(REMOVE_RECURSE
  "libmrflow_mr.a"
)
