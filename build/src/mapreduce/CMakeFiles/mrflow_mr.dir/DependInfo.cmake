
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/cluster.cpp" "src/mapreduce/CMakeFiles/mrflow_mr.dir/cluster.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mrflow_mr.dir/cluster.cpp.o.d"
  "/root/repo/src/mapreduce/driver.cpp" "src/mapreduce/CMakeFiles/mrflow_mr.dir/driver.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mrflow_mr.dir/driver.cpp.o.d"
  "/root/repo/src/mapreduce/job.cpp" "src/mapreduce/CMakeFiles/mrflow_mr.dir/job.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mrflow_mr.dir/job.cpp.o.d"
  "/root/repo/src/mapreduce/service.cpp" "src/mapreduce/CMakeFiles/mrflow_mr.dir/service.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mrflow_mr.dir/service.cpp.o.d"
  "/root/repo/src/mapreduce/typed.cpp" "src/mapreduce/CMakeFiles/mrflow_mr.dir/typed.cpp.o" "gcc" "src/mapreduce/CMakeFiles/mrflow_mr.dir/typed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/mrflow_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
