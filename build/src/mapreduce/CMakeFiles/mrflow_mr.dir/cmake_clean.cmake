file(REMOVE_RECURSE
  "CMakeFiles/mrflow_mr.dir/cluster.cpp.o"
  "CMakeFiles/mrflow_mr.dir/cluster.cpp.o.d"
  "CMakeFiles/mrflow_mr.dir/driver.cpp.o"
  "CMakeFiles/mrflow_mr.dir/driver.cpp.o.d"
  "CMakeFiles/mrflow_mr.dir/job.cpp.o"
  "CMakeFiles/mrflow_mr.dir/job.cpp.o.d"
  "CMakeFiles/mrflow_mr.dir/service.cpp.o"
  "CMakeFiles/mrflow_mr.dir/service.cpp.o.d"
  "CMakeFiles/mrflow_mr.dir/typed.cpp.o"
  "CMakeFiles/mrflow_mr.dir/typed.cpp.o.d"
  "libmrflow_mr.a"
  "libmrflow_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrflow_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
