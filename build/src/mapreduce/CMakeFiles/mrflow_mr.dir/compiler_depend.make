# Empty compiler generated dependencies file for mrflow_mr.
# This may be replaced when dependencies are built.
