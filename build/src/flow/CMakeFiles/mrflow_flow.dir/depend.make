# Empty dependencies file for mrflow_flow.
# This may be replaced when dependencies are built.
