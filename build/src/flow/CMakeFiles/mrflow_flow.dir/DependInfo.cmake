
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/dinic.cpp" "src/flow/CMakeFiles/mrflow_flow.dir/dinic.cpp.o" "gcc" "src/flow/CMakeFiles/mrflow_flow.dir/dinic.cpp.o.d"
  "/root/repo/src/flow/edmonds_karp.cpp" "src/flow/CMakeFiles/mrflow_flow.dir/edmonds_karp.cpp.o" "gcc" "src/flow/CMakeFiles/mrflow_flow.dir/edmonds_karp.cpp.o.d"
  "/root/repo/src/flow/ford_fulkerson_dfs.cpp" "src/flow/CMakeFiles/mrflow_flow.dir/ford_fulkerson_dfs.cpp.o" "gcc" "src/flow/CMakeFiles/mrflow_flow.dir/ford_fulkerson_dfs.cpp.o.d"
  "/root/repo/src/flow/push_relabel.cpp" "src/flow/CMakeFiles/mrflow_flow.dir/push_relabel.cpp.o" "gcc" "src/flow/CMakeFiles/mrflow_flow.dir/push_relabel.cpp.o.d"
  "/root/repo/src/flow/residual.cpp" "src/flow/CMakeFiles/mrflow_flow.dir/residual.cpp.o" "gcc" "src/flow/CMakeFiles/mrflow_flow.dir/residual.cpp.o.d"
  "/root/repo/src/flow/validate.cpp" "src/flow/CMakeFiles/mrflow_flow.dir/validate.cpp.o" "gcc" "src/flow/CMakeFiles/mrflow_flow.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrflow_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/mrflow_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/mrflow_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
