file(REMOVE_RECURSE
  "libmrflow_flow.a"
)
