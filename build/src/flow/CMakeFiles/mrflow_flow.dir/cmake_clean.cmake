file(REMOVE_RECURSE
  "CMakeFiles/mrflow_flow.dir/dinic.cpp.o"
  "CMakeFiles/mrflow_flow.dir/dinic.cpp.o.d"
  "CMakeFiles/mrflow_flow.dir/edmonds_karp.cpp.o"
  "CMakeFiles/mrflow_flow.dir/edmonds_karp.cpp.o.d"
  "CMakeFiles/mrflow_flow.dir/ford_fulkerson_dfs.cpp.o"
  "CMakeFiles/mrflow_flow.dir/ford_fulkerson_dfs.cpp.o.d"
  "CMakeFiles/mrflow_flow.dir/push_relabel.cpp.o"
  "CMakeFiles/mrflow_flow.dir/push_relabel.cpp.o.d"
  "CMakeFiles/mrflow_flow.dir/residual.cpp.o"
  "CMakeFiles/mrflow_flow.dir/residual.cpp.o.d"
  "CMakeFiles/mrflow_flow.dir/validate.cpp.o"
  "CMakeFiles/mrflow_flow.dir/validate.cpp.o.d"
  "libmrflow_flow.a"
  "libmrflow_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrflow_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
