file(REMOVE_RECURSE
  "CMakeFiles/mrflow_graph.dir/bfs.cpp.o"
  "CMakeFiles/mrflow_graph.dir/bfs.cpp.o.d"
  "CMakeFiles/mrflow_graph.dir/edgelist_io.cpp.o"
  "CMakeFiles/mrflow_graph.dir/edgelist_io.cpp.o.d"
  "CMakeFiles/mrflow_graph.dir/generators.cpp.o"
  "CMakeFiles/mrflow_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mrflow_graph.dir/graph.cpp.o"
  "CMakeFiles/mrflow_graph.dir/graph.cpp.o.d"
  "CMakeFiles/mrflow_graph.dir/mr_bfs.cpp.o"
  "CMakeFiles/mrflow_graph.dir/mr_bfs.cpp.o.d"
  "libmrflow_graph.a"
  "libmrflow_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrflow_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
