# Empty dependencies file for mrflow_graph.
# This may be replaced when dependencies are built.
