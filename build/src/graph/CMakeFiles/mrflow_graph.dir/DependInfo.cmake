
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cpp" "src/graph/CMakeFiles/mrflow_graph.dir/bfs.cpp.o" "gcc" "src/graph/CMakeFiles/mrflow_graph.dir/bfs.cpp.o.d"
  "/root/repo/src/graph/edgelist_io.cpp" "src/graph/CMakeFiles/mrflow_graph.dir/edgelist_io.cpp.o" "gcc" "src/graph/CMakeFiles/mrflow_graph.dir/edgelist_io.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/mrflow_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/mrflow_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/mrflow_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/mrflow_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/mr_bfs.cpp" "src/graph/CMakeFiles/mrflow_graph.dir/mr_bfs.cpp.o" "gcc" "src/graph/CMakeFiles/mrflow_graph.dir/mr_bfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/mrflow_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/mrflow_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
