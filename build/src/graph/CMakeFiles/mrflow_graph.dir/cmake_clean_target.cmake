file(REMOVE_RECURSE
  "libmrflow_graph.a"
)
