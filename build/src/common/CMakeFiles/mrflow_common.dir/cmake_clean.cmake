file(REMOVE_RECURSE
  "CMakeFiles/mrflow_common.dir/counters.cpp.o"
  "CMakeFiles/mrflow_common.dir/counters.cpp.o.d"
  "CMakeFiles/mrflow_common.dir/flags.cpp.o"
  "CMakeFiles/mrflow_common.dir/flags.cpp.o.d"
  "CMakeFiles/mrflow_common.dir/log.cpp.o"
  "CMakeFiles/mrflow_common.dir/log.cpp.o.d"
  "CMakeFiles/mrflow_common.dir/rng.cpp.o"
  "CMakeFiles/mrflow_common.dir/rng.cpp.o.d"
  "CMakeFiles/mrflow_common.dir/serde.cpp.o"
  "CMakeFiles/mrflow_common.dir/serde.cpp.o.d"
  "CMakeFiles/mrflow_common.dir/table.cpp.o"
  "CMakeFiles/mrflow_common.dir/table.cpp.o.d"
  "CMakeFiles/mrflow_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mrflow_common.dir/thread_pool.cpp.o.d"
  "libmrflow_common.a"
  "libmrflow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrflow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
