# Empty compiler generated dependencies file for mrflow_common.
# This may be replaced when dependencies are built.
