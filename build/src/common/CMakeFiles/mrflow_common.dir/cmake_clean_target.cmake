file(REMOVE_RECURSE
  "libmrflow_common.a"
)
