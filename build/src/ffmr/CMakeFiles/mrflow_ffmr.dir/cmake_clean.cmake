file(REMOVE_RECURSE
  "CMakeFiles/mrflow_ffmr.dir/accumulator.cpp.o"
  "CMakeFiles/mrflow_ffmr.dir/accumulator.cpp.o.d"
  "CMakeFiles/mrflow_ffmr.dir/augmenter.cpp.o"
  "CMakeFiles/mrflow_ffmr.dir/augmenter.cpp.o.d"
  "CMakeFiles/mrflow_ffmr.dir/ff_job.cpp.o"
  "CMakeFiles/mrflow_ffmr.dir/ff_job.cpp.o.d"
  "CMakeFiles/mrflow_ffmr.dir/solver.cpp.o"
  "CMakeFiles/mrflow_ffmr.dir/solver.cpp.o.d"
  "CMakeFiles/mrflow_ffmr.dir/types.cpp.o"
  "CMakeFiles/mrflow_ffmr.dir/types.cpp.o.d"
  "libmrflow_ffmr.a"
  "libmrflow_ffmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrflow_ffmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
