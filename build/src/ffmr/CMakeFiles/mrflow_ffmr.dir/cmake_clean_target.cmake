file(REMOVE_RECURSE
  "libmrflow_ffmr.a"
)
