
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ffmr/accumulator.cpp" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/accumulator.cpp.o" "gcc" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/accumulator.cpp.o.d"
  "/root/repo/src/ffmr/augmenter.cpp" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/augmenter.cpp.o" "gcc" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/augmenter.cpp.o.d"
  "/root/repo/src/ffmr/ff_job.cpp" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/ff_job.cpp.o" "gcc" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/ff_job.cpp.o.d"
  "/root/repo/src/ffmr/solver.cpp" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/solver.cpp.o" "gcc" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/solver.cpp.o.d"
  "/root/repo/src/ffmr/types.cpp" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/types.cpp.o" "gcc" "src/ffmr/CMakeFiles/mrflow_ffmr.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/mrflow_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mrflow_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/mrflow_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
