# Empty dependencies file for mrflow_ffmr.
# This may be replaced when dependencies are built.
