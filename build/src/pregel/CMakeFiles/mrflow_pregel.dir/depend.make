# Empty dependencies file for mrflow_pregel.
# This may be replaced when dependencies are built.
