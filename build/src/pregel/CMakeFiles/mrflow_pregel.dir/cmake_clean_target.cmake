file(REMOVE_RECURSE
  "libmrflow_pregel.a"
)
