file(REMOVE_RECURSE
  "CMakeFiles/mrflow_pregel.dir/maxflow.cpp.o"
  "CMakeFiles/mrflow_pregel.dir/maxflow.cpp.o.d"
  "libmrflow_pregel.a"
  "libmrflow_pregel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrflow_pregel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
