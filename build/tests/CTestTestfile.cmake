# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/mr_engine_test[1]_include.cmake")
include("/root/repo/build/tests/ffmr_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/mr_bfs_test[1]_include.cmake")
include("/root/repo/build/tests/ffmr_types_test[1]_include.cmake")
include("/root/repo/build/tests/ffmr_solver_test[1]_include.cmake")
include("/root/repo/build/tests/pregel_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
