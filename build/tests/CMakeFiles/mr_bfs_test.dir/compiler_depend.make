# Empty compiler generated dependencies file for mr_bfs_test.
# This may be replaced when dependencies are built.
