file(REMOVE_RECURSE
  "CMakeFiles/mr_bfs_test.dir/mr_bfs_test.cpp.o"
  "CMakeFiles/mr_bfs_test.dir/mr_bfs_test.cpp.o.d"
  "mr_bfs_test"
  "mr_bfs_test.pdb"
  "mr_bfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_bfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
