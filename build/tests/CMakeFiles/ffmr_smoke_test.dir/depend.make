# Empty dependencies file for ffmr_smoke_test.
# This may be replaced when dependencies are built.
