file(REMOVE_RECURSE
  "CMakeFiles/ffmr_smoke_test.dir/ffmr_smoke_test.cpp.o"
  "CMakeFiles/ffmr_smoke_test.dir/ffmr_smoke_test.cpp.o.d"
  "ffmr_smoke_test"
  "ffmr_smoke_test.pdb"
  "ffmr_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffmr_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
