# Empty dependencies file for ffmr_types_test.
# This may be replaced when dependencies are built.
