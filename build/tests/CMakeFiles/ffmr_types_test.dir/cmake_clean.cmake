file(REMOVE_RECURSE
  "CMakeFiles/ffmr_types_test.dir/ffmr_types_test.cpp.o"
  "CMakeFiles/ffmr_types_test.dir/ffmr_types_test.cpp.o.d"
  "ffmr_types_test"
  "ffmr_types_test.pdb"
  "ffmr_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffmr_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
