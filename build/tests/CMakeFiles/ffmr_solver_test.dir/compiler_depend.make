# Empty compiler generated dependencies file for ffmr_solver_test.
# This may be replaced when dependencies are built.
