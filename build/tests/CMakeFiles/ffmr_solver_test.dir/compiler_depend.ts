# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ffmr_solver_test.
