file(REMOVE_RECURSE
  "CMakeFiles/ffmr_solver_test.dir/ffmr_solver_test.cpp.o"
  "CMakeFiles/ffmr_solver_test.dir/ffmr_solver_test.cpp.o.d"
  "ffmr_solver_test"
  "ffmr_solver_test.pdb"
  "ffmr_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffmr_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
