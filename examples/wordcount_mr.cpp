// The MapReduce substrate on its own: the classic word count, showing the
// generic engine API (typed/lambda mappers, counters, combiners, stats)
// that the FFMR solver is built on.
//
//   ./wordcount_mr [--docs=200] [--nodes=4] [--combiner]
#include <cstdio>
#include <map>

#include "common/flags.h"
#include "common/observability.h"
#include "common/rng.h"
#include "dfs/record_io.h"
#include "mapreduce/typed.h"

using namespace mrflow;

int main(int argc, char** argv) {
  common::Flags flags(argc, argv);
  const int docs = static_cast<int>(flags.get_int("docs", 200));
  const int nodes = static_cast<int>(flags.get_int("nodes", 4));
  const bool use_combiner = flags.get_bool("combiner", false);
  if (!common::obs::finish_flags(
          flags,
          "usage: wordcount_mr [--docs=200 --nodes=4 --combiner]\n")) {
    return 2;
  }

  mr::ClusterConfig config;
  config.num_slave_nodes = nodes;
  config.dfs_block_size = 16 << 10;
  mr::Cluster cluster(config);

  // Synthesize "documents" from a Zipf-ish vocabulary.
  static const char* kVocab[] = {"the",  "flow",    "graph",  "map",
                                 "reduce", "vertex", "edge",  "path",
                                 "cut",  "round",   "shuffle", "cluster"};
  rng::Xoshiro256 rng(7);
  {
    dfs::RecordWriter w(&cluster.fs(), "docs");
    for (int d = 0; d < docs; ++d) {
      std::string text;
      int words = 20 + static_cast<int>(rng.next_below(30));
      for (int i = 0; i < words; ++i) {
        // Skewed pick: low indices are much more frequent.
        size_t pick = std::min(rng.next_below(12), rng.next_below(12));
        text += kVocab[pick];
        text += ' ';
      }
      w.write("doc" + std::to_string(d), text);
    }
    w.close();
  }

  mr::JobSpec spec;
  spec.name = "wordcount";
  spec.inputs = {"docs"};
  spec.output_prefix = "counts";
  spec.mapper = mr::lambda_mapper(
      [](std::string_view, std::string_view text, mr::MapContext& ctx) {
        size_t start = 0;
        while (start < text.size()) {
          size_t space = text.find(' ', start);
          if (space == std::string_view::npos) space = text.size();
          if (space > start) {
            ctx.emit(text.substr(start, space - start), "1");
            ctx.counters().increment("words");
          }
          start = space + 1;
        }
      });
  auto summing = mr::lambda_reducer(
      [](std::string_view key, const mr::Values& values,
         mr::ReduceContext& ctx) {
        int64_t total = 0;
        for (std::string_view v : values) total += std::stoll(std::string(v));
        ctx.emit(key, std::to_string(total));
      });
  spec.reducer = summing;
  if (use_combiner) spec.combiner = summing;

  mr::JobStats stats = mr::run_job(cluster, spec);

  std::map<std::string, int64_t> counts;
  for (int r = 0; r < stats.num_reduce_tasks; ++r) {
    dfs::RecordReader reader(&cluster.fs(), mr::partition_file("counts", r));
    while (auto rec = reader.next()) {
      counts[std::string(rec->key)] = std::stoll(std::string(rec->value));
    }
  }
  std::printf("word counts over %d documents (%lld words):\n", docs,
              static_cast<long long>(stats.counters.value("words")));
  for (const auto& [word, n] : counts) {
    std::printf("  %-8s %lld\n", word.c_str(), static_cast<long long>(n));
  }
  std::printf(
      "\n%d map tasks, %d reduce tasks; map out %lld records; shuffle %s%s;\n"
      "simulated cluster time %s\n",
      stats.num_map_tasks, stats.num_reduce_tasks,
      static_cast<long long>(stats.map_output_records),
      serde::human_bytes(stats.shuffle_bytes).c_str(),
      use_combiner ? " (with combiner)" : "",
      serde::human_duration(stats.sim_seconds).c_str());
  return 0;
}
