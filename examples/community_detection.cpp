// Community identification via max-flow / min-cut (Flake, Lawrence & Giles
// SIGKDD 2000; Imafuji & Kitsuregawa IEICE 2004 -- applications motivating
// the paper's intro).
//
// We plant two dense communities joined by a few weak bridge edges, pick
// seed members of community A and "far" seeds of community B, and compute
// an FFMR max-flow from a virtual source (wired to the A seeds) to a
// virtual sink (wired to the B seeds). Dense intra-community connectivity
// means the cheapest cut is the bridge edges, so the source side of the
// min cut recovers community A.
//
//   ./community_detection [--members=400] [--bridges=6] [--seeds=4]
#include <cstdio>
#include <numeric>

#include "common/flags.h"
#include "common/observability.h"
#include "common/rng.h"
#include "ffmr/solver.h"
#include "flow/validate.h"
#include "graph/generators.h"

using namespace mrflow;

int main(int argc, char** argv) {
  common::Flags flags(argc, argv);
  const auto members =
      static_cast<graph::VertexId>(flags.get_int("members", 400));
  const int bridges = static_cast<int>(flags.get_int("bridges", 6));
  const int seeds = static_cast<int>(flags.get_int("seeds", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 7));
  if (!common::obs::finish_flags(
          flags,
          "usage: community_detection [--members=400 --bridges=6 "
          "--seeds=4 --seed=7]\n")) {
    return 2;
  }

  // --- Plant two communities: vertices [0, members) and [members, 2*members)
  rng::Xoshiro256 rng(seed);
  graph::Graph a = graph::watts_strogatz(members, 8, 0.2, seed);
  graph::Graph g(2 * members);
  for (const auto& e : a.edges()) {
    g.add_undirected(e.a, e.b, e.cap_ab);                    // community A
    g.add_undirected(members + e.a, members + e.b, e.cap_ab);  // community B
  }
  for (int i = 0; i < bridges; ++i) {  // weak ties between communities
    g.add_undirected(rng.next_below(members),
                     members + rng.next_below(members), 1);
  }

  // --- Seed wiring: virtual source -> A seeds, B seeds -> virtual sink,
  // both with infinite capacity. The min cut then falls on the cheapest
  // separator between the seed sets -- the bridge edges.
  graph::VertexId s = g.num_vertices();
  graph::VertexId t = s + 1;
  g.ensure_vertex(t);
  auto a_seeds = rng.sample_without_replacement(members, seeds);
  auto b_seeds = rng.sample_without_replacement(members, seeds);
  for (auto v : a_seeds) g.add_edge(s, v, graph::kInfiniteCap, 0);
  for (auto v : b_seeds) g.add_edge(members + v, t, graph::kInfiniteCap, 0);
  g.finalize();

  std::printf(
      "Planted 2 communities of %llu members, %d bridge edges, %d seeds in "
      "community A\n",
      static_cast<unsigned long long>(members), bridges, seeds);

  // --- FFMR max-flow on the simulated cluster.
  mr::ClusterConfig config;
  config.num_slave_nodes = 4;
  mr::Cluster cluster(config);
  ffmr::FfmrOptions options;
  options.variant = ffmr::Variant::FF5;
  auto result = ffmr::solve_max_flow(cluster, g, s, t, options);
  std::printf("max-flow = %lld in %d rounds; extracting min cut...\n",
              static_cast<long long>(result.max_flow), result.rounds);

  // --- The source side of the min cut is the recovered community.
  std::vector<bool> in_community =
      flow::min_cut_partition(g, s, result.assignment);
  size_t recovered_a = 0, leaked_b = 0;
  for (graph::VertexId v = 0; v < members; ++v) recovered_a += in_community[v];
  for (graph::VertexId v = members; v < 2 * members; ++v) {
    leaked_b += in_community[v];
  }
  std::printf(
      "recovered community: %zu/%llu of community A, %zu/%llu of community "
      "B leaked in\n",
      recovered_a, static_cast<unsigned long long>(members), leaked_b,
      static_cast<unsigned long long>(members));

  double precision =
      recovered_a + leaked_b == 0
          ? 0.0
          : static_cast<double>(recovered_a) / (recovered_a + leaked_b);
  std::printf("precision of the cut w.r.t. the planted community: %.3f\n",
              precision);
  return precision > 0.9 ? 0 : 1;
}
