// Sybil-attack detection via max-flow bottlenecks (Yu et al., SybilGuard,
// SIGCOMM 2006; Tran et al., NSDI 2009 -- applications from the paper's
// intro). A sybil region can create arbitrarily many fake identities and
// internal edges, but only few *attack edges* to the honest region. The
// max-flow between an honest seed and a suspect is therefore capped by the
// attack-edge bottleneck for sybil suspects, while honest suspects enjoy
// many disjoint paths.
//
//   ./sybil_defense [--honest=600] [--sybil=200] [--attack_edges=4]
#include <cstdio>

#include "common/flags.h"
#include "common/observability.h"
#include "common/rng.h"
#include "ffmr/solver.h"
#include "graph/generators.h"

using namespace mrflow;

namespace {

// Max-flow between two ordinary vertices via FFMR on a small simulated
// cluster. A fresh cluster per query keeps DFS namespaces independent.
graph::Capacity ffmr_flow(const graph::Graph& g, graph::VertexId s,
                          graph::VertexId t) {
  mr::ClusterConfig config;
  config.num_slave_nodes = 4;
  mr::Cluster cluster(config);
  ffmr::FfmrOptions options;
  options.variant = ffmr::Variant::FF5;
  return ffmr::solve_max_flow(cluster, g, s, t, options).max_flow;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags(argc, argv);
  const auto honest = static_cast<graph::VertexId>(flags.get_int("honest", 600));
  const auto sybil = static_cast<graph::VertexId>(flags.get_int("sybil", 200));
  const int attack_edges = static_cast<int>(flags.get_int("attack_edges", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 13));
  if (!common::obs::finish_flags(
          flags,
          "usage: sybil_defense [--honest=600 --sybil=200 "
          "--attack_edges=4 --seed=13]\n")) {
    return 2;
  }

  // Honest social network + sybil region with few attack edges.
  rng::Xoshiro256 rng(seed);
  graph::Graph h = graph::facebook_like(honest, 10, seed);
  graph::Graph g(honest + sybil);
  for (const auto& e : h.edges()) g.add_undirected(e.a, e.b);
  graph::Graph sy = graph::barabasi_albert(sybil, 4, seed + 1);
  for (const auto& e : sy.edges()) {
    g.add_undirected(honest + e.a, honest + e.b);
  }
  for (int i = 0; i < attack_edges; ++i) {
    g.add_undirected(rng.next_below(honest), honest + rng.next_below(sybil));
  }
  g.finalize();

  std::printf(
      "honest=%llu sybil=%llu attack_edges=%d; the sybil region has only %d\n"
      "edges into the honest region, so flows to sybil suspects are capped\n"
      "at %d regardless of how many identities the attacker fabricates.\n\n",
      static_cast<unsigned long long>(honest),
      static_cast<unsigned long long>(sybil), attack_edges, attack_edges,
      attack_edges);

  graph::VertexId verifier = rng.next_below(honest);
  while (g.degree(verifier) < 8) verifier = rng.next_below(honest);

  int correct = 0, total = 0;
  std::printf("suspect      true-label  max-flow  verdict\n");
  for (int trial = 0; trial < 6; ++trial) {
    bool actually_sybil = trial % 2 == 1;
    graph::VertexId suspect =
        actually_sybil ? honest + rng.next_below(sybil) : rng.next_below(honest);
    if (suspect == verifier) continue;
    graph::Capacity flow = ffmr_flow(g, verifier, suspect);
    // Admission rule: accept if the flow clears the attack-edge budget.
    bool verdict_sybil = flow <= attack_edges;
    ++total;
    correct += verdict_sybil == actually_sybil;
    std::printf("%-12llu %-11s %-9lld %s\n",
                static_cast<unsigned long long>(suspect),
                actually_sybil ? "sybil" : "honest",
                static_cast<long long>(flow),
                verdict_sybil ? "REJECT (sybil)" : "admit (honest)");
  }
  std::printf("\nclassified %d/%d suspects correctly\n", correct, total);
  return correct == total ? 0 : 1;
}
