// Command-line max-flow tool over edge-list files -- the "downstream user"
// interface to every solver in the library.
//
//   ./maxflow_cli <edges.txt> --source=0 --sink=42 [--algo=ff5]
//
// Edge-list format (see graph/edgelist_io.h): "u v [cap_uv [cap_vu]]" per
// line, '#' comments. Algorithms: ff1..ff5 (MapReduce), ffpr (distributed
// push-relabel), auto (portfolio selection between dinic/ff5/ffpr; prints
// the decision JSON), pregel, dinic, edmonds_karp, push_relabel.
// --backend=<x> is an alias for --algo=<x> (the solver-portfolio surface).
//
// Prints the max-flow value, the min cut (source-side size and the cut
// edges), and engine statistics for the distributed algorithms.
//
// Observability (distributed algorithms; see common/observability.h):
//   --trace_out=<f>      Chrome-tracing/Perfetto span JSON of the whole run
//   --metrics_out=<f>    engine histogram/gauge metrics JSON
//   --metrics_text=<f>   the same metrics as Prometheus text exposition
//   --profile_out=<f>    per-job ProfileReport JSON (critical path + blame)
//   --flight_out=<f>     flight-recorder dump: auto-written on failure,
//                        always written at exit
//   --round_report=<f>   per-round JSONL report (ffmr/ffpr; tail-able)
//
// Verification and chaos (see DESIGN.md, "Testing & verification"):
//   --certify            print the full max-flow/min-cut certificate and
//                        exit non-zero unless it validates
//   --fault_shape=<s>    inject faults: task, node, corrupt, straggler,
//                        rpc, or all (ffmr only; `corrupt` implies the
//                        wire format, whose frame checksums detect it)
//   --fault_prob=<p>     per-draw fault probability (default 0.05)
//   --fault_seed=<n>     fault schedule seed; same seed => same failures
//
// Topology & speculation (ffmr only; results are bit-identical across all
// of these -- they change only the simulated schedule and byte routing):
//   --racks=<r>             group the slave nodes into r racks (default 1)
//   --inter_rack_mbps=<m>   oversubscribed core bandwidth; 0 = flat network
//   --speculation           speculative backup tasks for stragglers
//
// Serve mode (the warm-start FlowService; see src/service/flow_service.h):
//   --serve=<trace|->    replay a query/update trace ('-' = stdin) through
//                        a long-lived FlowService instead of one solve.
//                        Trace lines: "query s t", "insert u v c [c2]",
//                        "delete u v", "cap u v c [c2]" (src/service/trace.h)
//   --batch_window=<n>   consecutive queries gathered per shared batch (8)
//   --cache_capacity=<n> LRU cache entries (64)
//   --no_warm / --no_cache / --no_batch / --no_certify   disable a layer
//   --verbose            print every query answer, not just the summary
//   --algo selects the serve backend: dinic (default), ff1..ff5, ffpr,
//   or auto (per-query portfolio selection).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/flags.h"
#include "common/observability.h"
#include "ffmr/solver.h"
#include "ffpr/solver.h"
#include "flow/certify.h"
#include "flow/max_flow.h"
#include "flow/portfolio.h"
#include "flow/validate.h"
#include "graph/edgelist_io.h"
#include "pregel/maxflow.h"
#include "service/flow_service.h"

using namespace mrflow;

namespace {

constexpr const char* kUsage =
    "usage: maxflow_cli <edges.txt> --source=S --sink=T "
    "[--algo=ff5|ffpr|auto|pregel|dinic|edmonds_karp|push_relabel] "
    "[--backend=<same as --algo>] "
    "[--nodes=4] [--cut] [--certify] "
    "[--fault_shape=task|node|corrupt|straggler|rpc|all "
    "--fault_prob=0.05 --fault_seed=1] "
    "[--serve=trace.txt|- --batch_window=8 --cache_capacity=64 "
    "--no_warm --no_cache --no_batch --no_certify --verbose]\n";

double percentile_us(std::vector<double> walls, double p) {
  if (walls.empty()) return 0;
  std::sort(walls.begin(), walls.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(walls.size() - 1));
  return walls[idx] * 1e6;
}

int run_serve(graph::Graph g, const std::string& trace_path,
              const std::string& algo, bool is_ffmr, int nodes,
              const common::Flags& flags, const std::string& round_report,
              const common::obs::OutputPaths& obs) {
  service::ServiceOptions sopt;
  sopt.warm_start = !flags.get_bool("no_warm", false);
  sopt.cache = !flags.get_bool("no_cache", false);
  sopt.batching = !flags.get_bool("no_batch", false);
  sopt.certify_answers = !flags.get_bool("no_certify", false);
  sopt.batch_window = static_cast<int>(flags.get_int("batch_window", 8));
  sopt.cache_capacity =
      static_cast<size_t>(flags.get_int("cache_capacity", 64));
  sopt.round_report = round_report;
  bool verbose = flags.get_bool("verbose", false);
  if (!common::obs::finish_flags(flags, kUsage)) return 2;

  if (is_ffmr) {
    sopt.backend = service::Backend::kFfmr;
    sopt.ffmr.variant = static_cast<ffmr::Variant>(algo[2] - '0');
  } else if (algo == "ffpr") {
    sopt.backend = service::Backend::kFfpr;
  } else if (algo == "auto") {
    sopt.backend = service::Backend::kAuto;
  } else if (algo != "dinic") {
    std::fprintf(stderr,
                 "--serve supports --algo=dinic, ff1..ff5, ffpr or auto\n");
    return 2;
  }
  const bool needs_cluster = sopt.backend != service::Backend::kDinic;

  // Batching runs its shared waves over MR, so the cluster is needed even
  // with the sequential Dinic backend.
  std::optional<mr::Cluster> cluster;
  if (needs_cluster || sopt.batching) {
    mr::ClusterConfig config;
    config.num_slave_nodes = nodes;
    cluster.emplace(config);
  }

  service::Trace trace;
  try {
    trace = trace_path == "-" ? service::parse_trace(std::cin)
                              : service::load_trace_file(trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  service::FlowService svc(cluster.has_value() ? &*cluster : nullptr,
                           std::move(g), sopt);
  service::ReplayResult rr = svc.replay(trace);

  std::vector<const service::Op*> query_ops;
  for (const service::Op& op : trace) {
    if (op.kind == service::OpKind::kQuery) query_ops.push_back(&op);
  }
  uint64_t by_source[4] = {0, 0, 0, 0};
  std::vector<double> walls;
  walls.reserve(rr.query_results.size());
  for (size_t i = 0; i < rr.query_results.size(); ++i) {
    const service::QueryResult& r = rr.query_results[i];
    ++by_source[static_cast<int>(r.source)];
    walls.push_back(r.wall_seconds);
    if (verbose && i < query_ops.size()) {
      std::printf("query %llu -> %llu = %lld (%s, %d rounds, %.1f us)\n",
                  static_cast<unsigned long long>(query_ops[i]->u),
                  static_cast<unsigned long long>(query_ops[i]->v),
                  static_cast<long long>(r.value),
                  service::answer_source_name(r.source), r.rounds,
                  r.wall_seconds * 1e6);
    }
  }

  const service::ServiceCounters& c = svc.counters();
  std::printf("serve: %zu ops (%llu queries, %llu updates) in %.3f s, "
              "backend=%s\n",
              trace.size(), static_cast<unsigned long long>(rr.queries),
              static_cast<unsigned long long>(rr.updates), rr.wall_seconds,
              service::backend_name(sopt.backend));
  std::printf("answers: cold=%llu warm=%llu cache=%llu batch=%llu\n",
              static_cast<unsigned long long>(by_source[0]),
              static_cast<unsigned long long>(by_source[1]),
              static_cast<unsigned long long>(by_source[2]),
              static_cast<unsigned long long>(by_source[3]));
  std::printf("counters: warm_hits=%llu cache_hits=%llu repair_rounds=%llu "
              "queries_batched=%llu invalidations=%llu evictions=%llu "
              "epoch=%llu\n",
              static_cast<unsigned long long>(c.warm_hits),
              static_cast<unsigned long long>(c.cache_hits),
              static_cast<unsigned long long>(c.repair_rounds),
              static_cast<unsigned long long>(c.queries_batched),
              static_cast<unsigned long long>(c.cache_invalidations),
              static_cast<unsigned long long>(c.cache_evictions),
              static_cast<unsigned long long>(svc.epoch()));
  std::printf("query latency: p50=%.1f us p95=%.1f us p99=%.1f us\n",
              percentile_us(walls, 0.50), percentile_us(walls, 0.95),
              percentile_us(walls, 0.99));
  common::obs::write_outputs(obs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags(argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  graph::Graph g = graph::read_edgelist_file(flags.positional()[0]);
  auto source = static_cast<graph::VertexId>(flags.get_int("source", 0));
  auto sink = static_cast<graph::VertexId>(
      flags.get_int("sink", static_cast<int64_t>(g.num_vertices()) - 1));
  std::string algo = flags.get_string("algo", "ff5");
  // --backend is the portfolio-era alias; it wins when both are given.
  const std::string backend_flag = flags.get_string("backend", "");
  if (!backend_flag.empty()) algo = backend_flag;
  int nodes = static_cast<int>(flags.get_int("nodes", 4));
  bool show_cut = flags.get_bool("cut", false);
  // Consumes the five observability flags and arms span recording, the
  // profile collector, and the flight recorder's auto-dump path.
  common::obs::OutputPaths obs = common::obs::parse_flags(flags);
  std::string round_report = flags.get_string("round_report", "");
  std::string serve = flags.get_string("serve", "");
  const bool is_ffmr = algo.size() == 3 && algo.compare(0, 2, "ff") == 0 &&
                       algo[2] >= '1' && algo[2] <= '5';
  if (!serve.empty()) {
    return run_serve(std::move(g), serve, algo, is_ffmr, nodes, flags,
                     round_report, obs);
  }
  bool certify = flags.get_bool("certify", false);
  std::string fault_shape = flags.get_string("fault_shape", "");
  double fault_prob = flags.get_double("fault_prob", 0.05);
  auto fault_seed = static_cast<uint64_t>(flags.get_int("fault_seed", 1));
  int racks = static_cast<int>(flags.get_int("racks", 1));
  double inter_rack_mbps = flags.get_double("inter_rack_mbps", 0.0);
  bool speculation = flags.get_bool("speculation", false);
  if (!common::obs::finish_flags(flags, kUsage)) return 2;

  std::printf("%llu vertices, %zu edge pairs; %s: %llu -> %llu\n",
              static_cast<unsigned long long>(g.num_vertices()),
              g.num_edge_pairs(), algo.c_str(),
              static_cast<unsigned long long>(source),
              static_cast<unsigned long long>(sink));

  // Portfolio selection: measure, print the decision, and dispatch to the
  // chosen backend (the ffmr/ffpr round reports carry the same backend
  // name in every line).
  std::string portfolio_json;
  if (algo == "auto") {
    flow::PortfolioDecision d = flow::choose_backend(g, source, sink);
    portfolio_json = d.to_json();
    std::printf("portfolio: %s\n", portfolio_json.c_str());
    switch (d.backend) {
      case flow::PortfolioBackend::kSequentialDinic: algo = "dinic"; break;
      case flow::PortfolioBackend::kBidirectionalFf: algo = "ff5"; break;
      case flow::PortfolioBackend::kPushRelabel: algo = "ffpr"; break;
    }
  }
  const bool run_ffmr = algo.size() == 3 && algo.compare(0, 2, "ff") == 0 &&
                        algo[2] >= '1' && algo[2] <= '5';
  const bool run_ffpr = algo == "ffpr";
  if (!fault_shape.empty() && !run_ffmr && !run_ffpr) {
    std::fprintf(stderr,
                 "--fault_shape only applies to --algo=ff1..ff5 or ffpr\n");
    return 2;
  }

  // Shared simulated-cluster configuration for the distributed backends.
  // Throws std::invalid_argument on an unknown fault shape.
  auto make_cluster_config = [&]() {
    mr::ClusterConfig config;
    config.num_slave_nodes = nodes;
    config.num_racks = racks;
    config.cost.inter_rack_mbps = inter_rack_mbps;
    config.speculative_execution = speculation;
    if (!fault_shape.empty()) {
      config.fault = mr::FaultConfig::shape(fault_shape, fault_prob,
                                            fault_seed);
      config.max_task_attempts = 8;  // survive the injected crash rate
      std::printf("faults: shape=%s p=%g seed=%llu\n", fault_shape.c_str(),
                  fault_prob, static_cast<unsigned long long>(fault_seed));
    }
    return config;
  };

  graph::FlowAssignment assignment;
  if (algo == "dinic") {
    assignment = flow::max_flow_dinic(g, source, sink);
  } else if (algo == "edmonds_karp") {
    assignment = flow::max_flow_edmonds_karp(g, source, sink);
  } else if (algo == "push_relabel") {
    assignment = flow::max_flow_push_relabel(g, source, sink);
  } else if (algo == "pregel") {
    auto r = pregel::pregel_max_flow(g, source, sink);
    std::printf("pregel: %d supersteps, %llu messages (%s)\n", r.supersteps,
                static_cast<unsigned long long>(r.stats.total_messages),
                serde::human_bytes(r.stats.total_message_bytes).c_str());
    assignment = std::move(r.assignment);
  } else if (run_ffmr) {
    mr::ClusterConfig config;
    try {
      config = make_cluster_config();
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    ffmr::FfmrOptions options;
    options.variant = static_cast<ffmr::Variant>(algo[2] - '0');
    options.round_report = round_report;
    if (config.fault.corrupt_read_probability > 0) {
      // Corruption is only detectable on checksummed frames; spilled map
      // outputs give node crashes real files to destroy.
      options.wire = ffmr::WireChoice::kOn;
    }
    if (config.fault.node_crash_probability > 0) {
      options.spill_map_outputs = true;
    }
    mr::Cluster cluster(config);
    auto r = ffmr::solve_max_flow(cluster, g, source, sink, options);
    std::printf("%s: %d MR rounds, %lld task retries, shuffle %s, "
                "sim time %s\n",
                ffmr::variant_name(options.variant), r.rounds,
                static_cast<long long>(r.totals.task_retries),
                serde::human_bytes(r.totals.shuffle_bytes).c_str(),
                serde::human_duration(r.totals.sim_seconds).c_str());
    assignment = std::move(r.assignment);
  } else if (run_ffpr) {
    mr::ClusterConfig config;
    try {
      config = make_cluster_config();
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    ffpr::FfprOptions options;
    options.round_report = round_report;
    if (config.fault.corrupt_read_probability > 0) {
      options.wire = ffmr::WireChoice::kOn;
    }
    if (config.fault.node_crash_probability > 0) {
      options.spill_map_outputs = true;
    }
    mr::Cluster cluster(config);
    auto r = ffpr::solve_max_flow(cluster, g, source, sink, options);
    std::printf("ffpr: %d push waves, %d relabel waves, %lld pushes, "
                "%lld lifts, %lld task retries, shuffle %s, sim time %s\n",
                r.waves, r.relabel_rounds,
                static_cast<long long>(r.total_pushes),
                static_cast<long long>(r.total_lifts),
                static_cast<long long>(r.totals.task_retries),
                serde::human_bytes(r.totals.shuffle_bytes).c_str(),
                serde::human_duration(r.totals.sim_seconds).c_str());
    assignment = std::move(r.assignment);
  } else {
    std::fprintf(stderr, "unknown --algo=%s\n", algo.c_str());
    return 2;
  }

  // The portfolio decision rides in the round report as a trailer line
  // (the solver's RoundReportWriter truncates on open, so this must come
  // after the run).
  if (!portfolio_json.empty() && !round_report.empty()) {
    if (FILE* f = std::fopen(round_report.c_str(), "a")) {
      std::fprintf(f, "{\"portfolio\":%s}\n", portfolio_json.c_str());
      std::fclose(f);
    }
  }

  std::printf("max-flow = %lld\n", static_cast<long long>(assignment.value));
  flow::Certificate cert = flow::certify_max_flow(g, source, sink, assignment);
  // After certification so an invalid certificate's trigger() is already
  // in the note ring when the exit dump is (re)written.
  common::obs::write_outputs(obs);
  if (certify) {
    // The full evidence: every check's verdict, the witness cut, and any
    // violation diagnostics.
    std::printf("%s\n", cert.summary().c_str());
  } else {
    std::printf("certificate: %s\n",
                cert.valid() ? "valid maximum flow"
                             : cert.summary().c_str());
  }

  if (show_cut) {
    auto reachable = flow::min_cut_partition(g, source, assignment);
    size_t side = 0;
    for (bool b : reachable) side += b;
    std::printf("min cut: %zu vertices on the source side; cut edges:\n",
                side);
    for (size_t i = 0; i < g.num_edge_pairs(); ++i) {
      const auto& e = g.edge(i);
      if (reachable[e.a] != reachable[e.b]) {
        std::printf("  %llu %s %llu\n",
                    static_cast<unsigned long long>(e.a),
                    reachable[e.a] ? "->" : "<-",
                    static_cast<unsigned long long>(e.b));
      }
    }
  }
  return cert.valid() ? 0 : 1;
}
