// Command-line max-flow tool over edge-list files -- the "downstream user"
// interface to every solver in the library.
//
//   ./maxflow_cli <edges.txt> --source=0 --sink=42 [--algo=ff5]
//
// Edge-list format (see graph/edgelist_io.h): "u v [cap_uv [cap_vu]]" per
// line, '#' comments. Algorithms: ff1..ff5 (MapReduce), pregel,
// dinic, edmonds_karp, push_relabel.
//
// Prints the max-flow value, the min cut (source-side size and the cut
// edges), and engine statistics for the distributed algorithms.
//
// Observability (distributed algorithms; see common/observability.h):
//   --trace_out=<f>      Chrome-tracing/Perfetto span JSON of the whole run
//   --metrics_out=<f>    engine histogram/gauge metrics JSON
//   --metrics_text=<f>   the same metrics as Prometheus text exposition
//   --profile_out=<f>    per-job ProfileReport JSON (critical path + blame)
//   --flight_out=<f>     flight-recorder dump: auto-written on failure,
//                        always written at exit
//   --round_report=<f>   per-round JSONL report (ffmr only; tail-able)
//
// Verification and chaos (see DESIGN.md, "Testing & verification"):
//   --certify            print the full max-flow/min-cut certificate and
//                        exit non-zero unless it validates
//   --fault_shape=<s>    inject faults: task, node, corrupt, straggler,
//                        rpc, or all (ffmr only; `corrupt` implies the
//                        wire format, whose frame checksums detect it)
//   --fault_prob=<p>     per-draw fault probability (default 0.05)
//   --fault_seed=<n>     fault schedule seed; same seed => same failures
//
// Topology & speculation (ffmr only; results are bit-identical across all
// of these -- they change only the simulated schedule and byte routing):
//   --racks=<r>             group the slave nodes into r racks (default 1)
//   --inter_rack_mbps=<m>   oversubscribed core bandwidth; 0 = flat network
//   --speculation           speculative backup tasks for stragglers
#include <cstdio>
#include <stdexcept>

#include "common/flags.h"
#include "common/observability.h"
#include "ffmr/solver.h"
#include "flow/certify.h"
#include "flow/max_flow.h"
#include "flow/validate.h"
#include "graph/edgelist_io.h"
#include "pregel/maxflow.h"

using namespace mrflow;

int main(int argc, char** argv) {
  common::Flags flags(argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: maxflow_cli <edges.txt> --source=S --sink=T "
                 "[--algo=ff5|pregel|dinic|edmonds_karp|push_relabel] "
                 "[--nodes=4] [--cut] [--certify] "
                 "[--fault_shape=task|node|corrupt|straggler|rpc|all "
                 "--fault_prob=0.05 --fault_seed=1]\n");
    return 2;
  }
  graph::Graph g = graph::read_edgelist_file(flags.positional()[0]);
  auto source = static_cast<graph::VertexId>(flags.get_int("source", 0));
  auto sink = static_cast<graph::VertexId>(
      flags.get_int("sink", static_cast<int64_t>(g.num_vertices()) - 1));
  std::string algo = flags.get_string("algo", "ff5");
  int nodes = static_cast<int>(flags.get_int("nodes", 4));
  bool show_cut = flags.get_bool("cut", false);
  // Consumes the five observability flags and arms span recording, the
  // profile collector, and the flight recorder's auto-dump path.
  common::obs::OutputPaths obs = common::obs::parse_flags(flags);
  std::string round_report = flags.get_string("round_report", "");
  bool certify = flags.get_bool("certify", false);
  std::string fault_shape = flags.get_string("fault_shape", "");
  double fault_prob = flags.get_double("fault_prob", 0.05);
  auto fault_seed = static_cast<uint64_t>(flags.get_int("fault_seed", 1));
  int racks = static_cast<int>(flags.get_int("racks", 1));
  double inter_rack_mbps = flags.get_double("inter_rack_mbps", 0.0);
  bool speculation = flags.get_bool("speculation", false);
  flags.check_unused();

  std::printf("%llu vertices, %zu edge pairs; %s: %llu -> %llu\n",
              static_cast<unsigned long long>(g.num_vertices()),
              g.num_edge_pairs(), algo.c_str(),
              static_cast<unsigned long long>(source),
              static_cast<unsigned long long>(sink));

  const bool is_ffmr = algo.size() == 3 && algo.compare(0, 2, "ff") == 0 &&
                       algo[2] >= '1' && algo[2] <= '5';
  if (!fault_shape.empty() && !is_ffmr) {
    std::fprintf(stderr, "--fault_shape only applies to --algo=ff1..ff5\n");
    return 2;
  }

  graph::FlowAssignment assignment;
  if (algo == "dinic") {
    assignment = flow::max_flow_dinic(g, source, sink);
  } else if (algo == "edmonds_karp") {
    assignment = flow::max_flow_edmonds_karp(g, source, sink);
  } else if (algo == "push_relabel") {
    assignment = flow::max_flow_push_relabel(g, source, sink);
  } else if (algo == "pregel") {
    auto r = pregel::pregel_max_flow(g, source, sink);
    std::printf("pregel: %d supersteps, %llu messages (%s)\n", r.supersteps,
                static_cast<unsigned long long>(r.stats.total_messages),
                serde::human_bytes(r.stats.total_message_bytes).c_str());
    assignment = std::move(r.assignment);
  } else if (is_ffmr) {
    mr::ClusterConfig config;
    config.num_slave_nodes = nodes;
    config.num_racks = racks;
    config.cost.inter_rack_mbps = inter_rack_mbps;
    config.speculative_execution = speculation;
    ffmr::FfmrOptions options;
    options.variant = static_cast<ffmr::Variant>(algo[2] - '0');
    options.round_report = round_report;
    if (!fault_shape.empty()) {
      try {
        config.fault = mr::FaultConfig::shape(fault_shape, fault_prob,
                                              fault_seed);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      config.max_task_attempts = 8;  // survive the injected crash rate
      if (config.fault.corrupt_read_probability > 0) {
        // Corruption is only detectable on checksummed frames; spilled map
        // outputs give node crashes real files to destroy.
        options.wire = ffmr::WireChoice::kOn;
      }
      if (config.fault.node_crash_probability > 0) {
        options.spill_map_outputs = true;
      }
      std::printf("faults: shape=%s p=%g seed=%llu\n", fault_shape.c_str(),
                  fault_prob, static_cast<unsigned long long>(fault_seed));
    }
    mr::Cluster cluster(config);
    auto r = ffmr::solve_max_flow(cluster, g, source, sink, options);
    std::printf("%s: %d MR rounds, %lld task retries, shuffle %s, "
                "sim time %s\n",
                ffmr::variant_name(options.variant), r.rounds,
                static_cast<long long>(r.totals.task_retries),
                serde::human_bytes(r.totals.shuffle_bytes).c_str(),
                serde::human_duration(r.totals.sim_seconds).c_str());
    assignment = std::move(r.assignment);
  } else {
    std::fprintf(stderr, "unknown --algo=%s\n", algo.c_str());
    return 2;
  }

  std::printf("max-flow = %lld\n", static_cast<long long>(assignment.value));
  flow::Certificate cert = flow::certify_max_flow(g, source, sink, assignment);
  // After certification so an invalid certificate's trigger() is already
  // in the note ring when the exit dump is (re)written.
  common::obs::write_outputs(obs);
  if (certify) {
    // The full evidence: every check's verdict, the witness cut, and any
    // violation diagnostics.
    std::printf("%s\n", cert.summary().c_str());
  } else {
    std::printf("certificate: %s\n",
                cert.valid() ? "valid maximum flow"
                             : cert.summary().c_str());
  }

  if (show_cut) {
    auto reachable = flow::min_cut_partition(g, source, assignment);
    size_t side = 0;
    for (bool b : reachable) side += b;
    std::printf("min cut: %zu vertices on the source side; cut edges:\n",
                side);
    for (size_t i = 0; i < g.num_edge_pairs(); ++i) {
      const auto& e = g.edge(i);
      if (reachable[e.a] != reachable[e.b]) {
        std::printf("  %llu %s %llu\n",
                    static_cast<unsigned long long>(e.a),
                    reachable[e.a] ? "->" : "<-",
                    static_cast<unsigned long long>(e.b));
      }
    }
  }
  return cert.valid() ? 0 : 1;
}
