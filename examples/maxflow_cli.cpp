// Command-line max-flow tool over edge-list files -- the "downstream user"
// interface to every solver in the library.
//
//   ./maxflow_cli <edges.txt> --source=0 --sink=42 [--algo=ff5]
//
// Edge-list format (see graph/edgelist_io.h): "u v [cap_uv [cap_vu]]" per
// line, '#' comments. Algorithms: ff1..ff5 (MapReduce), pregel,
// dinic, edmonds_karp, push_relabel.
//
// Prints the max-flow value, the min cut (source-side size and the cut
// edges), and engine statistics for the distributed algorithms.
//
// Observability (distributed algorithms):
//   --trace_out=<f>      Chrome-tracing/Perfetto span JSON of the whole run
//   --metrics_out=<f>    engine histogram/gauge metrics JSON
//   --round_report=<f>   per-round JSONL report (ffmr only; tail-able)
#include <cstdio>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ffmr/solver.h"
#include "flow/max_flow.h"
#include "flow/validate.h"
#include "graph/edgelist_io.h"
#include "pregel/maxflow.h"

using namespace mrflow;

int main(int argc, char** argv) {
  common::Flags flags(argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: maxflow_cli <edges.txt> --source=S --sink=T "
                 "[--algo=ff5|pregel|dinic|edmonds_karp|push_relabel] "
                 "[--nodes=4] [--cut]\n");
    return 2;
  }
  graph::Graph g = graph::read_edgelist_file(flags.positional()[0]);
  auto source = static_cast<graph::VertexId>(flags.get_int("source", 0));
  auto sink = static_cast<graph::VertexId>(
      flags.get_int("sink", static_cast<int64_t>(g.num_vertices()) - 1));
  std::string algo = flags.get_string("algo", "ff5");
  int nodes = static_cast<int>(flags.get_int("nodes", 4));
  bool show_cut = flags.get_bool("cut", false);
  std::string trace_out = flags.get_string("trace_out", "");
  std::string metrics_out = flags.get_string("metrics_out", "");
  std::string round_report = flags.get_string("round_report", "");
  flags.check_unused();
  // Recording must be on before the solver runs, not at export time.
  if (!trace_out.empty()) common::trace::set_enabled(true);

  std::printf("%llu vertices, %zu edge pairs; %s: %llu -> %llu\n",
              static_cast<unsigned long long>(g.num_vertices()),
              g.num_edge_pairs(), algo.c_str(),
              static_cast<unsigned long long>(source),
              static_cast<unsigned long long>(sink));

  graph::FlowAssignment assignment;
  if (algo == "dinic") {
    assignment = flow::max_flow_dinic(g, source, sink);
  } else if (algo == "edmonds_karp") {
    assignment = flow::max_flow_edmonds_karp(g, source, sink);
  } else if (algo == "push_relabel") {
    assignment = flow::max_flow_push_relabel(g, source, sink);
  } else if (algo == "pregel") {
    auto r = pregel::pregel_max_flow(g, source, sink);
    std::printf("pregel: %d supersteps, %llu messages (%s)\n", r.supersteps,
                static_cast<unsigned long long>(r.stats.total_messages),
                serde::human_bytes(r.stats.total_message_bytes).c_str());
    assignment = std::move(r.assignment);
  } else if (algo.size() == 3 && algo.compare(0, 2, "ff") == 0 &&
             algo[2] >= '1' && algo[2] <= '5') {
    mr::ClusterConfig config;
    config.num_slave_nodes = nodes;
    mr::Cluster cluster(config);
    ffmr::FfmrOptions options;
    options.variant = static_cast<ffmr::Variant>(algo[2] - '0');
    options.round_report = round_report;
    auto r = ffmr::solve_max_flow(cluster, g, source, sink, options);
    std::printf("%s: %d MR rounds, shuffle %s, sim time %s\n",
                ffmr::variant_name(options.variant), r.rounds,
                serde::human_bytes(r.totals.shuffle_bytes).c_str(),
                serde::human_duration(r.totals.sim_seconds).c_str());
    assignment = std::move(r.assignment);
  } else {
    std::fprintf(stderr, "unknown --algo=%s\n", algo.c_str());
    return 2;
  }

  if (!trace_out.empty()) {
    if (common::trace::write_chrome_trace(trace_out)) {
      std::printf("wrote %s (%zu spans, %zu dropped)\n", trace_out.c_str(),
                  common::trace::event_count(), common::trace::dropped_count());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
    }
  }
  if (!metrics_out.empty()) {
    auto& registry = common::MetricsRegistry::global();
    registry.harvest();
    std::string doc = registry.cumulative().to_json();
    doc += '\n';
    if (std::FILE* f = std::fopen(metrics_out.c_str(), "w")) {
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n", metrics_out.c_str());
    }
  }

  std::printf("max-flow = %lld\n", static_cast<long long>(assignment.value));
  auto report = flow::validate_max_flow(g, source, sink, assignment);
  std::printf("certificate: %s\n",
              report.ok ? "valid maximum flow" : report.summary().c_str());

  if (show_cut) {
    auto reachable = flow::min_cut_partition(g, source, assignment);
    size_t side = 0;
    for (bool b : reachable) side += b;
    std::printf("min cut: %zu vertices on the source side; cut edges:\n",
                side);
    for (size_t i = 0; i < g.num_edge_pairs(); ++i) {
      const auto& e = g.edge(i);
      if (reachable[e.a] != reachable[e.b]) {
        std::printf("  %llu %s %llu\n",
                    static_cast<unsigned long long>(e.a),
                    reachable[e.a] ? "->" : "<-",
                    static_cast<unsigned long long>(e.b));
      }
    }
  }
  return report.ok ? 0 : 1;
}
