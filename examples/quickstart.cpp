// Quickstart: compute a max-flow on a generated small-world graph with the
// FFMR solver, the way the paper's headline experiment does.
//
//   ./quickstart [--vertices=20000] [--degree=16] [--w=8] [--variant=5]
//
// Steps: (1) generate a Facebook-like small-world graph, (2) attach a super
// source/sink to w random high-degree vertices (paper Sec. V-A1), (3) run
// the FFMR variant on a simulated MapReduce cluster, (4) cross-check the
// result against the sequential Dinic oracle and the min-cut certificate.
#include <cstdio>

#include "common/flags.h"
#include "common/observability.h"
#include "ffmr/solver.h"
#include "flow/max_flow.h"
#include "flow/validate.h"
#include "graph/generators.h"

using namespace mrflow;

int main(int argc, char** argv) {
  common::Flags flags(argc, argv);
  const auto vertices =
      static_cast<graph::VertexId>(flags.get_int("vertices", 20000));
  const int degree = static_cast<int>(flags.get_int("degree", 16));
  const int w = static_cast<int>(flags.get_int("w", 8));
  const int variant = static_cast<int>(flags.get_int("variant", 5));
  const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 42));
  if (!common::obs::finish_flags(
          flags,
          "usage: quickstart [--vertices=20000 --degree=16 --w=8 "
          "--variant=5 --seed=42]\n")) {
    return 2;
  }

  std::printf("Generating small-world graph: %llu vertices, avg degree %d\n",
              static_cast<unsigned long long>(vertices), degree);
  graph::FlowProblem problem = graph::attach_super_terminals(
      graph::facebook_like(vertices, degree, seed), w,
      /*min_degree=*/static_cast<size_t>(degree), seed + 1);
  std::printf("  %zu edge pairs; super source=%llu sink=%llu (w=%d)\n",
              problem.graph.num_edge_pairs(),
              static_cast<unsigned long long>(problem.source),
              static_cast<unsigned long long>(problem.sink), w);

  // A small simulated cluster: 4 slave nodes, 2 map + 2 reduce slots each.
  mr::ClusterConfig config;
  config.num_slave_nodes = 4;
  config.map_slots_per_node = 2;
  config.reduce_slots_per_node = 2;
  mr::Cluster cluster(config);

  ffmr::FfmrOptions options;
  options.variant = static_cast<ffmr::Variant>(variant);
  ffmr::FfmrResult result = ffmr::solve_max_flow(cluster, problem, options);

  std::printf("\n%s finished: max-flow = %lld in %d MR rounds (+ build)\n",
              ffmr::variant_name(options.variant),
              static_cast<long long>(result.max_flow), result.rounds);
  std::printf("  total shuffle: %s, sim time: %s, wall: %.1fs\n",
              serde::human_bytes(result.totals.shuffle_bytes).c_str(),
              serde::human_duration(result.totals.sim_seconds).c_str(),
              result.totals.wall_seconds);

  // Verify against the in-memory oracle.
  auto oracle =
      flow::max_flow_dinic(problem.graph, problem.source, problem.sink);
  auto report = flow::validate_max_flow(problem.graph, problem.source,
                                        problem.sink, result.assignment);
  std::printf("  Dinic oracle: %lld -> %s; certificate: %s\n",
              static_cast<long long>(oracle.value),
              oracle.value == result.max_flow ? "MATCH" : "MISMATCH",
              report.ok ? "valid max flow" : report.summary().c_str());
  return oracle.value == result.max_flow && report.ok ? 0 : 1;
}
